// Bench regression gate tests: diff_bench_json must pass on identical
// documents, fail on a perturbed metric, honor per-metric tolerance bands,
// deduplicate google-benchmark's repeated same-name entries, and reject
// schema or benchmark-set drift.
#include <gtest/gtest.h>

#include <string>

#include "obs/bench_compare.h"
#include "util/json.h"

namespace ocsp {
namespace {

using obs::BenchDiffOptions;
using obs::diff_bench_json;

util::JsonValue parse(const std::string& text) {
  auto doc = util::json_parse(text);
  EXPECT_TRUE(doc.has_value()) << "test fixture is not valid JSON";
  return doc.value_or(util::JsonValue{});
}

const char* kBaseline = R"({
  "schema": "ocsp-bench-v1",
  "schema_version": 2,
  "binary": "./bench/bench_example",
  "benchmarks": [
    {
      "name": "BM_Example/1",
      "virt_ms": 1.25,
      "metrics": {
        "counters": {"commits": 7, "aborts": 2},
        "gauges": {"guess_accuracy": 0.7777777777777778},
        "histograms": {
          "latency": {"lo": 0, "hi": 100, "total": 4,
                      "p50": 25, "p99": 99, "p999": 99.9,
                      "buckets": [2, 2]}
        }
      }
    }
  ]
})";

std::string with(const std::string& doc, const std::string& from,
                 const std::string& to) {
  std::string out = doc;
  const std::size_t at = out.find(from);
  EXPECT_NE(at, std::string::npos);
  out.replace(at, from.size(), to);
  return out;
}

TEST(BenchDiff, IdenticalDocumentsPass) {
  const auto baseline = parse(kBaseline);
  const auto fresh = parse(kBaseline);
  const auto result = diff_bench_json(baseline, fresh);
  EXPECT_TRUE(result.ok()) << result.mismatches.front();
  EXPECT_TRUE(result.mismatches.empty());
}

TEST(BenchDiff, DifferentBinaryPathStillPasses) {
  // "binary" records where the bench ran from; checkout paths differ
  // between CI and a developer tree and must not trip the gate.
  const auto baseline = parse(kBaseline);
  const auto fresh = parse(
      with(kBaseline, "./bench/bench_example", "./build/bench/other"));
  EXPECT_TRUE(diff_bench_json(baseline, fresh).ok());
}

TEST(BenchDiff, PerturbedIntegerCounterFails) {
  const auto baseline = parse(kBaseline);
  const auto fresh = parse(with(kBaseline, "\"commits\": 7",
                                "\"commits\": 8"));
  const auto result = diff_bench_json(baseline, fresh);
  ASSERT_FALSE(result.ok());
  bool names_commits = false;
  for (const auto& m : result.mismatches) {
    if (m.find("commits") != std::string::npos) names_commits = true;
  }
  EXPECT_TRUE(names_commits);
}

TEST(BenchDiff, PerturbedFloatBeyondToleranceFails) {
  const auto baseline = parse(kBaseline);
  const auto fresh =
      parse(with(kBaseline, "\"virt_ms\": 1.25", "\"virt_ms\": 1.26"));
  EXPECT_FALSE(diff_bench_json(baseline, fresh).ok());
}

TEST(BenchDiff, ToleranceBandAdmitsDrift) {
  const auto baseline = parse(kBaseline);
  const auto fresh = parse(with(kBaseline, "\"commits\": 7",
                                "\"commits\": 8"));
  BenchDiffOptions options;
  options.metric_rel_tol["commits"] = 0.2;  // leaf-name override
  EXPECT_TRUE(diff_bench_json(baseline, fresh, options).ok());
  // ...but the band is per-metric: a different perturbed metric still fails.
  const auto fresh2 =
      parse(with(kBaseline, "\"aborts\": 2", "\"aborts\": 3"));
  EXPECT_FALSE(diff_bench_json(baseline, fresh2, options).ok());
}

TEST(BenchDiff, RepeatedEntriesAreDeduplicated) {
  // google-benchmark re-runs a benchmark a nondeterministic number of
  // times; the same-name entries are identical and must collapse to one.
  std::string doubled = kBaseline;
  const std::string entry = R"({
      "name": "BM_Example/1",
      "virt_ms": 1.25,
      "metrics": {
        "counters": {"commits": 7, "aborts": 2},
        "gauges": {"guess_accuracy": 0.7777777777777778},
        "histograms": {
          "latency": {"lo": 0, "hi": 100, "total": 4,
                      "p50": 25, "p99": 99, "p999": 99.9,
                      "buckets": [2, 2]}
        }
      }
    })";
  const std::size_t open = doubled.find("{\n      \"name\"");
  ASSERT_NE(open, std::string::npos);
  doubled.insert(open, entry + ",\n    ");
  const auto baseline = parse(kBaseline);
  const auto fresh = parse(doubled);
  const auto result = diff_bench_json(baseline, fresh);
  EXPECT_TRUE(result.ok());
  ASSERT_FALSE(result.notes.empty());
  EXPECT_NE(result.notes.front().find("deduplicated"), std::string::npos);
}

TEST(BenchDiff, MissingBenchmarkFails) {
  const auto baseline = parse(kBaseline);
  const auto fresh = parse(
      with(kBaseline, "\"name\": \"BM_Example/1\"",
           "\"name\": \"BM_Renamed/1\""));
  const auto result = diff_bench_json(baseline, fresh);
  ASSERT_FALSE(result.ok());
  // Both directions are reported: baseline entry gone, new entry unknown.
  EXPECT_GE(result.mismatches.size(), 2u);
}

TEST(BenchDiff, SchemaVersionDriftFails) {
  const auto baseline = parse(kBaseline);
  const auto fresh =
      parse(with(kBaseline, "\"schema_version\": 2", "\"schema_version\": 3"));
  const auto result = diff_bench_json(baseline, fresh);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.mismatches.front().find("schema_version"),
            std::string::npos);
}

TEST(BenchDiff, WrongSchemaStringFails) {
  const auto baseline = parse(kBaseline);
  const auto fresh = parse(
      with(kBaseline, "\"schema\": \"ocsp-bench-v1\"",
           "\"schema\": \"something-else\""));
  EXPECT_FALSE(diff_bench_json(baseline, fresh).ok());
}

TEST(BenchDiff, NewMetricNotInBaselineFails) {
  const auto baseline = parse(kBaseline);
  const auto fresh = parse(with(kBaseline, "\"commits\": 7",
                                "\"commits\": 7, \"extra\": 1"));
  const auto result = diff_bench_json(baseline, fresh);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.mismatches.front().find("extra"), std::string::npos);
}

}  // namespace
}  // namespace ocsp
