// Unit tests for the discrete-event kernel: ordering, FIFO tie-breaking,
// cancellation, deadlines, and determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"

namespace ocsp::sim {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(30, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(1); });
  s.at(20, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, SameTimeFifoTieBreak) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.at(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, NowAdvancesToFiringTime) {
  Scheduler s;
  Time seen = -1;
  s.at(42, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(s.now(), 42);
}

TEST(Scheduler, AfterIsRelative) {
  Scheduler s;
  Time seen = -1;
  s.at(10, [&] { s.after(5, [&] { seen = s.now(); }); });
  s.run();
  EXPECT_EQ(seen, 15);
}

TEST(Scheduler, CancelPreventsFiring) {
  Scheduler s;
  bool fired = false;
  auto h = s.at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(h));
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, CancelTwiceFails) {
  Scheduler s;
  auto h = s.at(10, [] {});
  EXPECT_TRUE(s.cancel(h));
  EXPECT_FALSE(s.cancel(h));
  s.run();
}

TEST(Scheduler, CancelAfterFireFails) {
  Scheduler s;
  auto h = s.at(10, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(h));
}

TEST(Scheduler, CancelInvalidHandle) {
  Scheduler s;
  EXPECT_FALSE(s.cancel(Scheduler::Handle{}));
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  std::vector<Time> fired;
  for (Time t : {10, 20, 30, 40}) {
    s.at(t, [&fired, &s] { fired.push_back(s.now()); });
  }
  EXPECT_EQ(s.run_until(25), 2u);
  EXPECT_EQ(s.now(), 25);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(s.pending(), 2u);
  s.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Scheduler, RunUntilAdvancesClockWhenEmpty) {
  Scheduler s;
  s.run_until(100);
  EXPECT_EQ(s.now(), 100);
}

TEST(Scheduler, EventsScheduledDuringRunFire) {
  Scheduler s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) s.after(1, chain);
  };
  s.at(0, chain);
  s.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), 4);
}

TEST(Scheduler, StepFiresExactlyOne) {
  Scheduler s;
  int count = 0;
  s.at(1, [&] { ++count; });
  s.at(2, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, PendingCountTracksCancellations) {
  Scheduler s;
  auto h1 = s.at(1, [] {});
  s.at(2, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(h1);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, FiredCountAccumulates) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.at(i, [] {});
  s.run();
  EXPECT_EQ(s.fired_count(), 7u);
}

TEST(Scheduler, ZeroDelayEventFiresAtCurrentTime) {
  Scheduler s;
  Time seen = -1;
  s.at(10, [&] { s.after(0, [&] { seen = s.now(); }); });
  s.run();
  EXPECT_EQ(seen, 10);
}

TEST(Scheduler, PriorityBreaksSameTimeTiesBeforeInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(5, [&] { order.push_back(0); });             // kDefaultPrio, first in
  s.at(5, /*prio=*/7, [&] { order.push_back(1); });
  s.at(5, /*prio=*/3, [&] { order.push_back(2); });
  s.at(5, /*prio=*/7, [&] { order.push_back(3); });  // ties with 1: FIFO
  s.at(4, [&] { order.push_back(4); });              // earlier time wins
  s.run();
  EXPECT_EQ(order, (std::vector<int>{4, 2, 1, 3, 0}));
}

TEST(Scheduler, NextTimeSkipsCancelledAndReportsNever) {
  Scheduler s;
  EXPECT_EQ(s.next_time(), kTimeNever);
  auto h1 = s.at(3, [] {});
  s.at(9, [] {});
  EXPECT_EQ(s.next_time(), 3);
  s.cancel(h1);
  EXPECT_EQ(s.next_time(), 9);
  s.run();
  EXPECT_EQ(s.next_time(), kTimeNever);
}

TEST(Scheduler, RunUntilAdvancesClockPastDrainedQueue) {
  Scheduler s;
  s.at(2, [] {});
  EXPECT_EQ(s.run_until(10), 1u);
  EXPECT_EQ(s.now(), 10);
  // A later window can start where the previous one left the clock.
  s.at(10, [] {});
  EXPECT_EQ(s.run_until(20), 1u);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(milliseconds(1), 1000000);
  EXPECT_EQ(seconds(1), 1000000000);
  EXPECT_DOUBLE_EQ(to_micros(microseconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
}

}  // namespace
}  // namespace ocsp::sim
