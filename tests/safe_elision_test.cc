// Integration tests for guard elision at statically-SAFE fork sites: the
// classifier's claim (no state copy, no guess, no verification needed) has
// to hold at runtime, and the debug soundness oracle has to agree.
#include <gtest/gtest.h>

#include "core/workloads.h"

namespace ocsp {
namespace {

core::SafeFanoutParams base_params(int servers = 4) {
  core::SafeFanoutParams p;
  p.servers = servers;
  p.net.latency = sim::microseconds(300);
  p.service_time = sim::microseconds(20);
  p.spec.safe_site_oracle = false;  // exercise the elided fast path
  return p;
}

TEST(SafeElision, FastPathElidesGuessMachinery) {
  auto result =
      baseline::run_scenario(core::safe_fanout_scenario(base_params(8)), true);
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  EXPECT_EQ(result.stats.safe_forks, 7u);
  EXPECT_EQ(result.stats.forks, 7u);
  EXPECT_EQ(result.stats.joins, 7u);
  // No guesses means nothing to verify, commit, or abort, and no join-time
  // control traffic.
  EXPECT_EQ(result.stats.commits, 0u);
  EXPECT_EQ(result.stats.total_aborts(), 0u);
  EXPECT_EQ(result.stats.control_sent, 0u);
  EXPECT_EQ(result.stats.rollbacks, 0u);
}

TEST(SafeElision, TraceMatchesPessimistic) {
  auto scenario = core::safe_fanout_scenario(base_params(6));
  auto pessimistic = baseline::run_scenario(scenario, false);
  auto optimistic = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(pessimistic.all_completed);
  ASSERT_TRUE(optimistic.all_completed);
  std::string why;
  EXPECT_TRUE(
      trace::compare_traces(pessimistic.trace, optimistic.trace, &why))
      << why;
  EXPECT_LT(optimistic.last_completion, pessimistic.last_completion);
}

TEST(SafeElision, OracleRoutesSafeSitesThroughGuardedPath) {
  auto params = base_params(4);
  params.spec.safe_site_oracle = true;
  auto result =
      baseline::run_scenario(core::safe_fanout_scenario(params), true);
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  // Under the oracle every SAFE site runs the full machinery and its claim
  // is checked dynamically: the guesses all verify.
  EXPECT_EQ(result.stats.safe_forks, 0u);
  EXPECT_EQ(result.stats.forks, 3u);
  EXPECT_EQ(result.stats.commits, 3u);
  EXPECT_EQ(result.stats.safe_oracle_violations, 0u);
  EXPECT_EQ(result.stats.total_aborts(), 0u);
}

// Randomized property: across fan-out widths, latencies, and seeds, (a) the
// oracle never observes a value/time fault at a SAFE-classified site, and
// (b) elided and oracle-checked runs both commit the sequential trace.
TEST(SafeElision, PropertyOracleNeverFires) {
  util::Rng rng(20260805);
  for (int trial = 0; trial < 20; ++trial) {
    auto params = base_params(static_cast<int>(rng.uniform_int(2, 9)));
    params.net.latency = sim::microseconds(rng.uniform_int(50, 550));
    params.service_time = sim::microseconds(rng.uniform_int(1, 40));
    params.net.jitter = sim::microseconds(rng.uniform_int(0, 50));
    params.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));

    auto scenario = core::safe_fanout_scenario(params);
    auto pessimistic = baseline::run_scenario(scenario, false);
    ASSERT_TRUE(pessimistic.all_completed) << "trial " << trial;

    params.spec.safe_site_oracle = true;
    auto oracle =
        baseline::run_scenario(core::safe_fanout_scenario(params), true);
    ASSERT_TRUE(oracle.all_completed) << "trial " << trial;
    EXPECT_EQ(oracle.stats.safe_oracle_violations, 0u)
        << "trial " << trial << ": " << oracle.stats.to_string();

    params.spec.safe_site_oracle = false;
    auto elided =
        baseline::run_scenario(core::safe_fanout_scenario(params), true);
    ASSERT_TRUE(elided.all_completed) << "trial " << trial;
    EXPECT_GT(elided.stats.safe_forks, 0u);

    std::string why;
    EXPECT_TRUE(
        trace::compare_traces(pessimistic.trace, oracle.trace, &why))
        << "trial " << trial << " (oracle): " << why;
    EXPECT_TRUE(
        trace::compare_traces(pessimistic.trace, elided.trace, &why))
        << "trial " << trial << " (elided): " << why;
  }
}

}  // namespace
}  // namespace ocsp
