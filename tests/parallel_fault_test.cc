// Faults under sharding: the robustness stack (seeded fault plans, the
// ack/retransmit transport, crash/restart with incarnation recovery) on
// exec::ParallelRuntime's worker threads.
//
// The load-bearing test is the parallel chaos sweep: every seeded fault
// plan, at every worker count, must commit exactly the fault-free
// sequential run's trace (Theorem 1).  Fault decisions draw from per-link
// fault streams, so a single shard must also reproduce the sequential
// fault-injected recorder stream bit for bit; and a crash on one shard
// must unwind dependent speculation on another shard through incarnation
// tags alone, even when every explicit ABORT is lost with the crash.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "baseline/scenario.h"
#include "core/workloads.h"
#include "exec/parallel.h"
#include "fault/plan.h"
#include "net/message.h"
#include "trace/events.h"

namespace ocsp {
namespace {

constexpr int kWorkerCounts[] = {1, 2, 4, 8};
constexpr sim::Time kDeadline = sim::seconds(10);

// Same chaos scaffolding as fault_tolerance_test: a PutLine run sized so
// the generated fault windows land inside it, full recovery stack on.
core::PutLineParams chaos_params() {
  core::PutLineParams p;
  p.lines = 10;
  p.service_time = sim::microseconds(200);
  p.client_compute = sim::microseconds(100);
  p.net.latency = sim::microseconds(500);
  p.spec.control_retry = true;
  p.spec.control_retry_interval = sim::milliseconds(1);
  p.spec.control_retry_limit = 30;
  p.spec.join_wait_timeout = sim::milliseconds(200);
  return p;
}

fault::ChaosSpec chaos_spec() {
  fault::ChaosSpec s;
  s.horizon = sim::milliseconds(20);
  s.partition_min_len = sim::milliseconds(1);
  s.partition_max_len = sim::milliseconds(5);
  s.crash_min_downtime = sim::milliseconds(1);
  s.crash_max_downtime = sim::milliseconds(4);
  return s;
}

baseline::Scenario chaos_scenario(const fault::FaultPlan& plan) {
  auto scenario = core::putline_scenario(chaos_params());
  scenario.options.fault_plan = plan;
  scenario.options.reliable.enabled = true;
  return scenario;
}

// Build a ParallelRuntime for `scenario` by hand (run_scenario_parallel
// minus the RunResult plumbing) so tests can reach per-process stats and
// per-shard recorders.
exec::ParallelRuntime make_parallel(const baseline::Scenario& scenario,
                                    int workers) {
  exec::ParallelOptions options;
  options.seed = scenario.options.seed;
  options.workers = workers;
  options.default_link = scenario.options.default_link;
  options.spec = scenario.options.spec;
  options.spec.speculation_enabled = true;
  options.fault_plan = scenario.options.fault_plan;
  options.reliable = scenario.options.reliable;
  return exec::ParallelRuntime(options);
}

void populate(exec::ParallelRuntime& rt, const baseline::Scenario& scenario) {
  for (const auto& proc : scenario.processes) {
    rt.add_process(proc.name, proc.program, proc.env);
  }
  for (const auto& link : scenario.links) {
    rt.set_link(rt.find(link.src), rt.find(link.dst), link.config);
  }
}

// ---------------------------------------------------------------------------
// The tentpole oracle: 64 seeded plans x every worker count, every
// committed trace equal to the fault-free sequential run.
// ---------------------------------------------------------------------------

TEST(ParallelChaos, TheoremOneHoldsAtEveryWorkerCount) {
  const auto reference =
      baseline::run_scenario(core::putline_scenario(chaos_params()), false);
  ASSERT_TRUE(reference.all_completed);

  int with_drop = 0, with_dup = 0, with_corrupt = 0, with_partition = 0,
      with_crash = 0;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const fault::FaultPlan plan =
        fault::make_chaos_plan(seed, chaos_spec(), /*num_processes=*/2);
    ASSERT_TRUE(plan.enabled);
    if (plan.data.drop > 0 || plan.control.drop > 0) ++with_drop;
    if (plan.data.duplicate > 0 || plan.control.duplicate > 0) ++with_dup;
    if (plan.data.corrupt > 0 || plan.control.corrupt > 0) ++with_corrupt;
    if (!plan.partitions.empty()) ++with_partition;
    if (!plan.crashes.empty()) ++with_crash;

    const auto scenario = chaos_scenario(plan);
    for (int workers : kWorkerCounts) {
      const auto par = exec::run_scenario_parallel(
          scenario, workers, /*speculation=*/true, /*compute_scale=*/0.0,
          kDeadline);
      ASSERT_TRUE(par.result.all_completed)
          << "seed " << seed << " workers " << workers << " plan "
          << plan.describe() << "\n"
          << par.result.stats.to_string();
      std::string why;
      EXPECT_TRUE(
          trace::compare_traces(reference.trace, par.result.trace, &why))
          << "seed " << seed << " workers " << workers << " plan "
          << plan.describe() << ": " << why;
    }
  }
  // The sweep must actually have exercised every fault class.
  EXPECT_GE(with_drop, 8);
  EXPECT_GE(with_dup, 8);
  EXPECT_GE(with_corrupt, 8);
  EXPECT_GE(with_partition, 8);
  EXPECT_GE(with_crash, 8);
}

// Same seed + same plan + same worker count reproduces exactly, and the
// fault/recovery counters agree with the sequential run of the same plan
// (both sides count the same injected faults when the schedule is the
// per-link deterministic one).
TEST(ParallelChaos, FaultCountersMatchSequentialPerLinkRun) {
  for (std::uint64_t seed : {1ull, 4ull, 5ull}) {  // drop, crash, mixed
    const fault::FaultPlan plan = fault::make_chaos_plan(seed, chaos_spec(), 2);
    auto scenario = chaos_scenario(plan);
    baseline::Scenario seq = scenario;
    seq.options.per_link_net = true;
    const auto ref = baseline::run_scenario(seq, true, kDeadline);
    ASSERT_TRUE(ref.all_completed);
    const auto par =
        exec::run_scenario_parallel(scenario, /*workers=*/1, true, 0.0,
                                    kDeadline);
    EXPECT_EQ(ref.network.faults_dropped, par.result.network.faults_dropped)
        << "seed " << seed;
    EXPECT_EQ(ref.network.faults_corrupted,
              par.result.network.faults_corrupted)
        << "seed " << seed;
    EXPECT_EQ(ref.network.faults_duplicated,
              par.result.network.faults_duplicated)
        << "seed " << seed;
    EXPECT_EQ(ref.metrics.counter_or("faults_injected"),
              par.result.metrics.counter_or("faults_injected"))
        << "seed " << seed;
    EXPECT_EQ(ref.metrics.counter_or("retransmissions"),
              par.result.metrics.counter_or("retransmissions"))
        << "seed " << seed;
    EXPECT_EQ(ref.metrics.counter_or("duplicates_suppressed"),
              par.result.metrics.counter_or("duplicates_suppressed"))
        << "seed " << seed;
    EXPECT_EQ(ref.stats.crashes, par.result.stats.crashes) << "seed " << seed;
    EXPECT_EQ(ref.stats.crash_recoveries, par.result.stats.crash_recoveries)
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Workers=1 bit-for-bit: the single shard must reproduce the sequential
// fault-injected recorder stream exactly — including kFaultInjected,
// kRetransmit, kDuplicateSuppressed, and the crash/recovery events.
// ---------------------------------------------------------------------------

// Serialize every Event field except wall_ns (as parallel_exec_test does).
std::string serialize_events(const obs::RunRecorder& rec) {
  std::ostringstream os;
  for (const auto& e : rec.events()) {
    os << static_cast<int>(e.kind) << '|' << e.when << '|' << e.process
       << '|' << e.peer << '|' << e.thread << '|' << e.interval << '|'
       << e.incarnation << '|' << e.guess.to_string() << '|'
       << e.guess_from.to_string() << '|' << static_cast<int>(e.reason)
       << '|' << static_cast<int>(e.control) << '|' << e.msg_id << '|'
       << e.a << '|' << e.b << '|' << e.detail << '\n';
  }
  return os.str();
}

TEST(ParallelChaos, SingleShardReproducesFaultInjectedStreamBitForBit) {
  // One seed per chaos category (seed % 6 selects it).
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const fault::FaultPlan plan = fault::make_chaos_plan(seed, chaos_spec(), 2);
    const auto scenario = chaos_scenario(plan);

    baseline::Scenario seq = scenario;
    seq.options.per_link_net = true;
    auto rt = baseline::make_runtime(seq, true);
    rt->run(kDeadline);

    exec::ParallelRuntime prt = make_parallel(scenario, /*workers=*/1);
    populate(prt, scenario);
    prt.run(kDeadline);

    EXPECT_EQ(serialize_events(rt->recorder()),
              serialize_events(*prt.shard_recorder(0)))
        << "seed " << seed << " plan " << plan.describe();
  }
}

// ---------------------------------------------------------------------------
// Cross-shard incarnation propagation: a crash on shard A must unwind a
// dependent guess on shard B through the incarnation tags piggybacked on
// reliable frames, even when every explicit ABORT is lost with the crash.
// ---------------------------------------------------------------------------

TEST(ParallelChaos, CrashUnwindsCrossShardDependentsWithoutExplicitAborts) {
  // Client X (shard 0) speculates against server Y (shard 1) with genuine
  // guess misses in the mix, then crashes mid-stream while a partition
  // spanning the crash eats everything in flight — including the explicit
  // ABORTs of X's failed guesses.  Y's unwinding therefore leans on the
  // incarnation machinery crossing the shard boundary: the bump rides into
  // Y's MPSC inbox (frame tags and the surviving control re-broadcasts),
  // dead-incarnation traffic is filtered as orphans, and the rollback
  // fixpoint runs on Y's own shard.
  core::PutLineParams params = chaos_params();
  params.fail_probability = 0.3;  // pre-crash misses: real ABORTs in flight
  const auto reference =
      baseline::run_scenario(core::putline_scenario(params), false);
  ASSERT_TRUE(reference.all_completed);

  fault::FaultPlan plan;
  plan.enabled = true;
  plan.crashes.push_back(
      {/*process=*/0, sim::microseconds(1500), sim::milliseconds(4)});
  plan.partitions.push_back(
      {0, 1, sim::microseconds(1000), sim::milliseconds(4)});
  auto scenario = core::putline_scenario(params);
  scenario.options.fault_plan = plan;
  scenario.options.reliable.enabled = true;

  // Client X lands on shard 0 and server Y on shard 1 at both widths.
  for (int workers : {2, 4}) {
    exec::ParallelRuntime prt = make_parallel(scenario, workers);
    populate(prt, scenario);
    prt.run(kDeadline);

    ASSERT_TRUE(prt.all_clients_completed())
        << "workers " << workers << "\n" << prt.total_stats().to_string();
    const auto stats = prt.total_stats();
    EXPECT_EQ(stats.crashes, 1u) << "workers " << workers;
    EXPECT_EQ(stats.crash_recoveries, 1u) << "workers " << workers;
    // The dependent really unwound on Y's shard...
    const auto& y = prt.process(prt.find("Y")).stats();
    EXPECT_GE(y.aborts_cascade + y.rollbacks, 1u) << "workers " << workers;
    // ...and Y filtered traffic from X's dead incarnation, which requires
    // the incarnation bump to have crossed the shard boundary.
    EXPECT_GE(y.orphans_discarded, 1u) << "workers " << workers;
    std::string why;
    EXPECT_TRUE(
        trace::compare_traces(reference.trace, prt.committed_trace(), &why))
        << "workers " << workers << ": " << why;
  }
}

// ---------------------------------------------------------------------------
// Reliable transport under sharding: heavy data drop forces cross-shard
// retransmissions (RTO timers on the sender's shard), and the run still
// commits the exact fault-free trace.
// ---------------------------------------------------------------------------

TEST(ParallelChaos, RetransmissionsRecoverCrossShardDrops) {
  const auto reference =
      baseline::run_scenario(core::putline_scenario(chaos_params()), false);
  ASSERT_TRUE(reference.all_completed);

  fault::FaultPlan plan;
  plan.enabled = true;
  plan.data.drop = 0.4;
  const auto scenario = chaos_scenario(plan);
  for (int workers : {2, 8}) {
    const auto par =
        exec::run_scenario_parallel(scenario, workers, true, 0.0, kDeadline);
    ASSERT_TRUE(par.result.all_completed)
        << "workers " << workers << "\n" << par.result.stats.to_string();
    EXPECT_GT(par.result.network.faults_dropped, 0u) << "workers " << workers;
    EXPECT_GT(par.result.metrics.counter_or("retransmissions"), 0u)
        << "workers " << workers;
    std::string why;
    EXPECT_TRUE(
        trace::compare_traces(reference.trace, par.result.trace, &why))
        << "workers " << workers << ": " << why;
  }
}

}  // namespace
}  // namespace ocsp
