// Integration tests for mutual speculation across two processes:
// Figure 6 (PRECEDENCE published, commit cascades through the chain) and
// Figure 7 (crossing speculative sends close the cycle x1 -> z1 -> x1; both
// processes abort their guesses, roll back, and re-execute).
#include <gtest/gtest.h>

#include "core/workloads.h"

namespace ocsp {
namespace {

core::MutualParams base_params(bool crossing) {
  core::MutualParams p;
  p.crossing = crossing;
  p.net.latency = sim::microseconds(100);
  p.service_time = sim::microseconds(10);
  return p;
}

TEST(MutualIntegration, Fig6PrecedenceThenCommitCascade) {
  auto scenario = core::mutual_scenario(base_params(false));
  auto result = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  // Z's guess depended on X's; it could only commit via PRECEDENCE + the
  // COMMIT(x1) cascade.
  EXPECT_GE(result.stats.precedence_sent, 1u) << result.stats.to_string();
  EXPECT_EQ(result.stats.total_aborts(), 0u) << result.stats.to_string();
  EXPECT_EQ(result.stats.commits, 2u);
}

TEST(MutualIntegration, Fig6TraceMatchesPessimistic) {
  auto scenario = core::mutual_scenario(base_params(false));
  auto pessimistic = baseline::run_scenario(scenario, false);
  auto optimistic = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(pessimistic.all_completed);
  ASSERT_TRUE(optimistic.all_completed);
  std::string why;
  EXPECT_TRUE(
      trace::compare_traces(pessimistic.trace, optimistic.trace, &why))
      << why << "\npessimistic:\n"
      << pessimistic.trace.to_string() << "optimistic:\n"
      << optimistic.trace.to_string();
}

TEST(MutualIntegration, Fig7CycleAbortsBothGuesses) {
  auto scenario = core::mutual_scenario(base_params(true));
  auto result = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  // The causal cycle is a time fault; both clients must abort and the run
  // must still converge.
  EXPECT_GE(result.stats.aborts_time_fault, 1u) << result.stats.to_string();
  EXPECT_GE(result.timeline_rollbacks, 1u);
}

TEST(MutualIntegration, Fig7ConvergesToValidSequentialOutcome) {
  // The two clients are independent, so several interleavings are legal
  // sequentially; the optimistic run must produce internally consistent
  // results: each client prints the box value its Take observed.
  auto scenario = core::mutual_scenario(base_params(true));
  auto result = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(result.all_completed);
  int prints = 0;
  for (ProcessId id : {ProcessId{0}, ProcessId{1}}) {
    for (const auto& e : result.trace.for_process(id)) {
      if (e.kind == trace::ObservableEvent::Kind::kExternalOutput) ++prints;
    }
  }
  EXPECT_EQ(prints, 2);
}

TEST(MutualIntegration, Fig7PessimisticHasNoAborts) {
  auto scenario = core::mutual_scenario(base_params(true));
  auto result = baseline::run_scenario(scenario, false);
  ASSERT_TRUE(result.all_completed);
  EXPECT_EQ(result.stats.total_aborts(), 0u);
  EXPECT_EQ(result.stats.rollbacks, 0u);
}

}  // namespace
}  // namespace ocsp
