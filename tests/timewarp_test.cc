// Unit tests for the compact Time Warp engine used in the section 5
// comparison: optimistic processing, stragglers, rollback, antimessages.
#include <gtest/gtest.h>

#include "baseline/timewarp.h"

namespace ocsp::baseline::tw {
namespace {

using csp::Env;
using csp::Value;

TEST(TimeWarp, ProcessesEventsInTimestampOrder) {
  Engine eng(0);
  std::vector<sim::Time> seen;
  const LpId lp = eng.add_lp("A", [&](Env&, const Event& e) {
    seen.push_back(e.recv_time);
    return std::vector<Emit>{};
  });
  eng.inject(lp, 30, "c", Value());
  eng.inject(lp, 10, "a", Value());
  eng.inject(lp, 20, "b", Value());
  ASSERT_TRUE(eng.run());
  EXPECT_EQ(seen, (std::vector<sim::Time>{10, 20, 30}));
  EXPECT_EQ(eng.stats().rollbacks, 0u);
}

TEST(TimeWarp, HandlerEmitsReachDestination) {
  Engine eng(0);
  int received = 0;
  const LpId b = eng.add_lp("B", [&](Env&, const Event& e) {
    if (e.op == "ping") ++received;
    return std::vector<Emit>{};
  });
  const LpId a = eng.add_lp("A", [&](Env&, const Event&) {
    return std::vector<Emit>{Emit{b, 5, "ping", Value(1)}};
  });
  eng.inject(a, 1, "go", Value());
  ASSERT_TRUE(eng.run());
  EXPECT_EQ(received, 1);
  EXPECT_EQ(eng.stats().events_processed, 2u);
}

TEST(TimeWarp, StragglerForcesRollback) {
  // LP B processes a late-timestamped local event immediately; a message
  // from A with an earlier receive time then arrives (delayed by wall
  // rounds) and must roll B back.
  Engine eng(3);  // messages become visible 3 rounds after sending
  std::vector<std::pair<std::string, sim::Time>> processed;
  LpId b = -1;
  b = eng.add_lp("B", [&](Env& state, const Event& e) {
    processed.emplace_back(e.op, e.recv_time);
    state.set("last", Value(e.recv_time));
    return std::vector<Emit>{};
  });
  const LpId a = eng.add_lp("A", [&](Env&, const Event&) {
    return std::vector<Emit>{Emit{b, 1, "early", Value()}};  // recv_time 6
  });
  eng.inject(b, 100, "late", Value());
  eng.inject(a, 5, "go", Value());
  ASSERT_TRUE(eng.run());
  EXPECT_GE(eng.stats().rollbacks, 1u);
  // Final state must reflect timestamp order: "late"(100) processed last.
  EXPECT_EQ(eng.state_of(b).get("last"), Value(sim::Time{100}));
  // "early" (recv 6) must have been (re)processed before the final "late".
  ASSERT_GE(processed.size(), 3u);  // late, early (straggler), late again
  EXPECT_EQ(processed.back().second, 100);
}

TEST(TimeWarp, RollbackRestoresState) {
  Engine eng(3);
  LpId b = -1;
  b = eng.add_lp("B", [&](Env& state, const Event& e) {
    // Order-sensitive state: concatenate op names.
    const std::string prev =
        state.has("s") ? state.get("s").as_string() : std::string();
    state.set("s", Value(prev + e.op.substr(0, 1)));
    return std::vector<Emit>{};
  });
  const LpId a = eng.add_lp("A", [&](Env&, const Event&) {
    return std::vector<Emit>{Emit{b, 1, "x", Value()}};  // recv 11
  });
  eng.inject(b, 50, "y", Value());
  eng.inject(a, 10, "go", Value());
  ASSERT_TRUE(eng.run());
  // Timestamp order is x(11) then y(50) regardless of arrival order.
  EXPECT_EQ(eng.state_of(b).get("s"), Value("xy"));
}

TEST(TimeWarp, AntimessagesCancelInducedWork) {
  // A's rolled-back event had emitted to C; the antimessage must undo C.
  Engine eng(4);
  LpId c = -1;
  int c_count = 0;
  c = eng.add_lp("C", [&](Env&, const Event&) {
    ++c_count;
    return std::vector<Emit>{};
  });
  LpId b = -1;
  b = eng.add_lp("B", [&](Env&, const Event& e) {
    // Forward everything to C.
    return std::vector<Emit>{Emit{c, 1, "fwd" + e.op, Value()}};
  });
  const LpId a = eng.add_lp("A", [&](Env&, const Event&) {
    return std::vector<Emit>{Emit{b, 1, "early", Value()}};
  });
  eng.inject(b, 100, "late", Value());
  eng.inject(a, 5, "go", Value());
  ASSERT_TRUE(eng.run());
  EXPECT_GE(eng.stats().antimessages_sent, 1u);
  // C processed: fwd-late (cancelled + re-sent after rollback) and
  // fwd-early; net effect is exactly two surviving events but possibly
  // more raw processed events.  Surviving = 2.
  EXPECT_GE(c_count, 2);
  // The re-sent fwd-late lands at recv time 101 = late(100) + 1.
  EXPECT_EQ(eng.lvt_of(c), 101);
}

TEST(TimeWarp, SharedServerTotalOrderCausesRollbacks) {
  // The section 5 workload: two clients with interleaved virtual times
  // streaming into one server; skewed wall delays make one client's events
  // arrive late, forcing the server to roll back — even though the clients
  // are causally unrelated.
  Engine eng(1);
  LpId server = -1;
  server = eng.add_lp("S", [&](Env& state, const Event&) {
    const auto n = state.get_or("n", Value(0)).as_int();
    state.set("n", Value(n + 1));
    return std::vector<Emit>{};
  });
  auto client = [&](int stride_offset) {
    return [&eng, server, stride_offset](Env& state,
                                         const Event&) {
      std::vector<Emit> out;
      out.push_back(Emit{server, 1, "req", Value(stride_offset)});
      const auto i = state.get_or("i", Value(0)).as_int();
      state.set("i", Value(i + 1));
      return out;
    };
  };
  const LpId c0 = eng.add_lp("C0", client(0));
  const LpId c1 = eng.add_lp("C1", client(1));
  // C1's messages crawl: 6 rounds of wall delay.
  eng.set_wall_delay(c1, server, 6);
  for (int i = 0; i < 6; ++i) {
    eng.inject(c0, 10 + 20 * i, "tick", Value());
    eng.inject(c1, 20 + 20 * i, "tick", Value());
  }
  ASSERT_TRUE(eng.run());
  EXPECT_GT(eng.stats().rollbacks, 0u);
  EXPECT_EQ(eng.state_of(server).get("n"), Value(12));
}

TEST(TimeWarp, GvtAdvances) {
  Engine eng(0);
  const LpId lp = eng.add_lp("A", [](Env&, const Event&) {
    return std::vector<Emit>{};
  });
  eng.inject(lp, 10, "x", Value());
  EXPECT_EQ(eng.gvt(), 10);
  eng.run();
  EXPECT_EQ(eng.gvt(), sim::kTimeNever);  // drained
}

}  // namespace
}  // namespace ocsp::baseline::tw
