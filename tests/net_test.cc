// Unit tests for the simulated network: latency models, FIFO vs reordering
// links, bandwidth serialization, loss, and per-pair overrides.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "sim/scheduler.h"

namespace ocsp::net {
namespace {

class TestMessage final : public Message {
 public:
  explicit TestMessage(int id, std::size_t size = 64) : id_(id), size_(size) {}
  std::string kind() const override { return "TEST"; }
  std::size_t wire_size() const override { return size_; }
  int id() const { return id_; }

 private:
  int id_;
  std::size_t size_;
};

struct Fixture {
  sim::Scheduler sched;
  Network net{sched, util::Rng(1)};
  std::vector<std::pair<ProcessId, int>> received;
  std::vector<sim::Time> times;

  void listen(ProcessId id) {
    net.register_endpoint(id, [this, id](const Envelope& env) {
      received.emplace_back(
          id, static_cast<const TestMessage&>(*env.payload).id());
      times.push_back(sched.now());
    });
  }
};

TEST(Network, FixedLatencyDelivery) {
  Fixture f;
  f.listen(1);
  LinkConfig link;
  link.latency = fixed_latency(100);
  f.net.set_default_link(link);
  f.net.send(0, 1, std::make_shared<TestMessage>(7));
  f.sched.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].second, 7);
  EXPECT_EQ(f.times[0], 100);
}

TEST(Network, FifoPreservesSendOrderUnderJitter) {
  Fixture f;
  f.listen(1);
  LinkConfig link;
  link.latency = uniform_latency(10, 1000);
  link.fifo = true;
  f.net.set_default_link(link);
  for (int i = 0; i < 20; ++i) {
    f.net.send(0, 1, std::make_shared<TestMessage>(i));
  }
  f.sched.run();
  ASSERT_EQ(f.received.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(f.received[size_t(i)].second, i);
}

TEST(Network, NonFifoCanReorder) {
  Fixture f;
  f.listen(1);
  LinkConfig link;
  link.latency = uniform_latency(10, 1000);
  link.fifo = false;
  f.net.set_default_link(link);
  for (int i = 0; i < 50; ++i) {
    f.net.send(0, 1, std::make_shared<TestMessage>(i));
  }
  f.sched.run();
  ASSERT_EQ(f.received.size(), 50u);
  bool reordered = false;
  for (std::size_t i = 1; i < f.received.size(); ++i) {
    if (f.received[i].second < f.received[i - 1].second) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(Network, PerPairLinkOverride) {
  Fixture f;
  f.listen(1);
  f.listen(2);
  LinkConfig fast;
  fast.latency = fixed_latency(10);
  f.net.set_default_link(fast);
  LinkConfig slow;
  slow.latency = fixed_latency(500);
  f.net.set_link(0, 2, slow);
  f.net.send(0, 2, std::make_shared<TestMessage>(1));  // slow pair
  f.net.send(0, 1, std::make_shared<TestMessage>(2));  // default
  f.sched.run();
  ASSERT_EQ(f.received.size(), 2u);
  EXPECT_EQ(f.received[0].second, 2);  // fast one first
  EXPECT_EQ(f.received[1].second, 1);
}

TEST(Network, BandwidthAddsSerializationDelay) {
  Fixture f;
  f.listen(1);
  LinkConfig link;
  link.latency = fixed_latency(0);
  link.bandwidth_bytes_per_sec = 1000;  // 1 KB/s: 1 byte per ms
  f.net.set_default_link(link);
  f.net.send(0, 1, std::make_shared<TestMessage>(1, /*size=*/100));
  f.sched.run();
  ASSERT_EQ(f.times.size(), 1u);
  EXPECT_EQ(f.times[0], sim::milliseconds(100));
}

TEST(Network, DropProbabilityLosesMessages) {
  Fixture f;
  f.listen(1);
  LinkConfig link;
  link.latency = fixed_latency(1);
  link.drop_probability = 0.5;
  f.net.set_default_link(link);
  for (int i = 0; i < 200; ++i) {
    f.net.send(0, 1, std::make_shared<TestMessage>(i));
  }
  f.sched.run();
  EXPECT_GT(f.net.stats().messages_dropped, 50u);
  EXPECT_LT(f.net.stats().messages_dropped, 150u);
  EXPECT_EQ(f.net.stats().messages_delivered + f.net.stats().messages_dropped,
            200u);
}

TEST(Network, DropFilterSparesUnmatchedMessages) {
  Fixture f;
  f.listen(1);
  LinkConfig link;
  link.latency = fixed_latency(1);
  link.drop_probability = 1.0;
  link.drop_filter = [](const Message& m) {
    return static_cast<const TestMessage&>(m).id() % 2 == 0;
  };
  f.net.set_default_link(link);
  for (int i = 0; i < 10; ++i) {
    f.net.send(0, 1, std::make_shared<TestMessage>(i));
  }
  f.sched.run();
  ASSERT_EQ(f.received.size(), 5u);
  for (const auto& [pid, id] : f.received) EXPECT_EQ(id % 2, 1);
}

TEST(Network, StatsCountBytes) {
  Fixture f;
  f.listen(1);
  f.net.send(0, 1, std::make_shared<TestMessage>(1, 100));
  f.net.send(0, 1, std::make_shared<TestMessage>(2, 28));
  f.sched.run();
  EXPECT_EQ(f.net.stats().messages_sent, 2u);
  EXPECT_EQ(f.net.stats().bytes_sent, 128u);
}

TEST(Network, MsgIdsAreUnique) {
  Fixture f;
  f.listen(1);
  const MsgId a = f.net.send(0, 1, std::make_shared<TestMessage>(1));
  const MsgId b = f.net.send(0, 1, std::make_shared<TestMessage>(2));
  EXPECT_NE(a, b);
  f.sched.run();
}

TEST(Network, TracerSeesDeliveries) {
  Fixture f;
  f.listen(1);
  int traced = 0;
  f.net.set_tracer([&](const Envelope&) { ++traced; });
  f.net.send(0, 1, std::make_shared<TestMessage>(1));
  f.sched.run();
  EXPECT_EQ(traced, 1);
}

TEST(LatencyModels, FixedIsConstant) {
  util::Rng rng(1);
  FixedLatency m(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(m.sample(rng), 42);
}

TEST(LatencyModels, UniformStaysInRange) {
  util::Rng rng(2);
  UniformLatency m(10, 20);
  for (int i = 0; i < 1000; ++i) {
    const auto v = m.sample(rng);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
}

TEST(LatencyModels, MinDelayIsTheDistributionFloor) {
  EXPECT_EQ(fixed_latency(42)->min_delay(), 42);
  EXPECT_EQ(uniform_latency(10, 20)->min_delay(), 10);
  EXPECT_EQ(exponential_latency(100, 50)->min_delay(), 100);
}

TEST(PerLinkStreams, HelpersArePureFunctionsOfIdentity) {
  // Seed base derives from a *copy* of the stream: the original is intact.
  util::Rng a(7);
  util::Rng b(7);
  const std::uint64_t base = Network::link_seed_base(a);
  EXPECT_EQ(base, Network::link_seed_base(a));
  EXPECT_EQ(a.next(), b.next());

  // Distinct ordered pairs get distinct streams; same pair, same stream.
  util::Rng s01 = Network::link_stream(base, 0, 1);
  util::Rng s01b = Network::link_stream(base, 0, 1);
  util::Rng s10 = Network::link_stream(base, 1, 0);
  EXPECT_EQ(s01.next(), s01b.next());
  EXPECT_NE(Network::link_stream(base, 0, 1).next(), s10.next());

  // Ids and priorities encode (src, dst, seq) uniquely and recoverably.
  const MsgId id = Network::link_msg_id(3, 4, 17);
  EXPECT_EQ(id & 0xffffffff, 17u);
  EXPECT_NE(id, Network::link_msg_id(4, 3, 17));
  EXPECT_NE(Network::link_prio(3, 4, 17), Network::link_prio(3, 4, 18));
  EXPECT_LT(Network::link_prio(3, 4, 17), sim::Scheduler::kDefaultPrio);
}

TEST(PerLinkStreams, MinLinkDelayCoversOverrides) {
  sim::Scheduler sched;
  Network net(sched, util::Rng(1));
  LinkConfig fast;
  fast.latency = fixed_latency(100);
  net.set_default_link(fast);
  EXPECT_EQ(net.min_link_delay(), 100);
  LinkConfig faster;
  faster.latency = uniform_latency(40, 80);
  net.set_link(2, 3, faster);
  EXPECT_EQ(net.min_link_delay(), 40);
}

TEST(LatencyModels, ExponentialAboveBase) {
  util::Rng rng(3);
  ExponentialLatency m(100, 50);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto v = m.sample(rng);
    EXPECT_GE(v, 100);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / 5000.0, 150.0, 5.0);
}

}  // namespace
}  // namespace ocsp::net
