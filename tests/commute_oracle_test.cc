// Differential oracle for commit-on-commute verification (Theorem 1 under
// the relaxed verifier): every run of the commute registry — pessimistic,
// optimistic with exact verification, optimistic with commute verification
// — must agree on each client's committed observable sequence, with
// registry reply payloads compared by truthiness (the clients only branch
// on them; the exact totals are interleaving-dependent between runs by
// design).  The runtime's fork-time use-class oracle must never fire on
// annotations the static analysis produced, and must drop (and count)
// hand-planted unsound ones.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/workloads.h"
#include "csp/service.h"

namespace ocsp {
namespace {

using csp::Value;

/// Registry reply payloads compared by truthiness (see file comment).
trace::CommittedTrace project_registry_replies(const trace::CommittedTrace& t,
                                               ProcessId registry) {
  trace::CommittedTrace out;
  for (ProcessId p : t.processes()) {
    for (trace::ObservableEvent ev : t.for_process(p)) {
      if (ev.kind == trace::ObservableEvent::Kind::kCallReturn &&
          ev.peer == registry) {
        ev.data = Value(ev.data.truthy());
      }
      out.append(std::move(ev));
    }
  }
  return out;
}

core::CommuteRegistryParams contended(int clients, std::uint64_t seed) {
  core::CommuteRegistryParams p;
  p.clients = clients;
  p.iterations = 5;
  p.seed = seed;
  // Derive a little topology variation from the seed so the sweep explores
  // different arrival interleavings, not just different RNG streams.
  p.net.latency = sim::microseconds(200 + 100 * (seed % 4));
  p.client_skew = sim::microseconds(50 * (seed % 5));
  return p;
}

void expect_clients_agree(const baseline::RunResult& pess,
                          const baseline::RunResult& opt, int clients,
                          const std::string& label) {
  const ProcessId registry = static_cast<ProcessId>(clients);
  const trace::CommittedTrace a =
      project_registry_replies(pess.trace, registry);
  const trace::CommittedTrace b =
      project_registry_replies(opt.trace, registry);
  for (int c = 0; c < clients; ++c) {
    std::string why;
    EXPECT_TRUE(
        trace::compare_process_trace(a, b, static_cast<ProcessId>(c), &why))
        << label << " client " << c << ": " << why;
  }
}

TEST(CommuteOracle, SingleClientAllModesFullTraceEquality) {
  // One client: no contention, so even the Stamp totals are deterministic
  // and the *unprojected* whole-system traces must match across all three
  // execution modes.
  for (bool commute : {false, true}) {
    core::CommuteRegistryParams p = contended(1, 3);
    p.spec.commute_verification = commute;
    auto pess = baseline::run_scenario(core::commute_registry_scenario(p),
                                       false);
    auto opt = baseline::run_scenario(core::commute_registry_scenario(p),
                                      true);
    ASSERT_TRUE(pess.all_completed);
    ASSERT_TRUE(opt.all_completed);
    std::string why;
    EXPECT_TRUE(trace::compare_traces(pess.trace, opt.trace, &why))
        << (commute ? "commute: " : "exact: ") << why;
    EXPECT_EQ(opt.stats.commute_oracle_violations, 0u);
  }
}

TEST(CommuteOracle, ContendedForgivenessMatchesSequentialReplay) {
  core::CommuteRegistryParams p = contended(3, 42);
  auto pess =
      baseline::run_scenario(core::commute_registry_scenario(p), false);

  p.spec.commute_verification = false;
  auto exact =
      baseline::run_scenario(core::commute_registry_scenario(p), true);
  p.spec.commute_verification = true;
  auto commute =
      baseline::run_scenario(core::commute_registry_scenario(p), true);

  ASSERT_TRUE(pess.all_completed && exact.all_completed &&
              commute.all_completed);
  expect_clients_agree(pess, exact, p.clients, "exact");
  expect_clients_agree(pess, commute, p.clients, "commute");

  // The relaxation must actually fire, and only ever at joins whose
  // verification would otherwise abort.
  EXPECT_EQ(exact.stats.commute_commits, 0u);
  EXPECT_GT(commute.stats.commute_commits, 0u);
  EXPECT_GE(commute.stats.commute_forgiven_vars,
            commute.stats.commute_commits);
  EXPECT_LT(commute.stats.total_aborts(), exact.stats.total_aborts());
  EXPECT_EQ(exact.stats.commute_oracle_violations, 0u);
  EXPECT_EQ(commute.stats.commute_oracle_violations, 0u);
}

TEST(CommuteOracle, AbelianVariantSafeUpgradesKeepFullClientTraces) {
  core::CommuteRegistryParams p = contended(3, 7);
  p.mutate_ops = false;
  auto pess =
      baseline::run_scenario(core::commute_registry_scenario(p), false);
  auto opt =
      baseline::run_scenario(core::commute_registry_scenario(p), true);
  ASSERT_TRUE(pess.all_completed && opt.all_completed);
  // Only abelian ops in play: every client's full (unprojected) committed
  // sequence is identical, and the streamed forks ran on the SAFE path.
  for (int c = 0; c < p.clients; ++c) {
    std::string why;
    EXPECT_TRUE(trace::compare_process_trace(pess.trace, opt.trace,
                                             static_cast<ProcessId>(c),
                                             &why))
        << "client " << c << ": " << why;
  }
  EXPECT_GT(opt.stats.safe_forks, 0u);
  EXPECT_EQ(opt.stats.total_aborts(), 0u);
  EXPECT_EQ(opt.stats.commute_oracle_violations, 0u);
}

TEST(CommuteOracle, RandomizedSweepNeverDiverges) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (int clients : {2, 3}) {
      core::CommuteRegistryParams p = contended(clients, seed);
      auto pess = baseline::run_scenario(core::commute_registry_scenario(p),
                                         false);
      auto commute = baseline::run_scenario(
          core::commute_registry_scenario(p), true);
      ASSERT_TRUE(pess.all_completed && commute.all_completed)
          << "seed " << seed << " clients " << clients;
      expect_clients_agree(pess, commute, clients,
                           "seed " + std::to_string(seed) + "/clients " +
                               std::to_string(clients));
      EXPECT_EQ(commute.stats.commute_oracle_violations, 0u)
          << "seed " << seed;
      EXPECT_GT(commute.stats.commute_commits, 0u) << "seed " << seed;
    }
  }
}

TEST(CommuteOracle, RuntimeOracleDropsUnsoundAnnotation) {
  // Hand-plant a verify=dead annotation on a variable the right thread
  // prints: the fork-time use-class oracle must reject it, count the
  // violation, and fall back to exact verification — so the wrong guess
  // aborts and the committed output still matches the sequential run.
  std::map<std::string, csp::PredictorSpec> preds;
  preds.emplace("v", csp::PredictorSpec::always(Value(99)));
  auto f = csp::fork(csp::call("S", "Echo", {csp::lit(Value(7))}, "v"),
                     csp::print(csp::var("v")), {"v"}, preds, "bogus");
  auto nf = std::make_shared<csp::ForkStmt>(*f);
  nf->verify["v"] = csp::VerifyMode::kDead;  // unsound: v is printed

  baseline::Scenario scenario;
  scenario.options.spec.commute_oracle = true;  // force on (Release too)
  scenario.add("X", nf);
  scenario.add("S", csp::echo_service(Value(7), sim::microseconds(10)));

  baseline::Scenario sequential = scenario;
  auto pess = baseline::run_scenario(sequential, false);
  auto opt = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(pess.all_completed && opt.all_completed);
  EXPECT_EQ(opt.stats.commute_oracle_violations, 1u);
  EXPECT_EQ(opt.stats.commute_commits, 0u);
  EXPECT_GT(opt.stats.aborts_value_fault, 0u);  // exact verification kept
  std::string why;
  EXPECT_TRUE(trace::compare_traces(pess.trace, opt.trace, &why)) << why;
}

TEST(CommuteOracle, RuntimeOracleSeesThePostForkContinuation) {
  // The right BRANCH never touches v, but the continuation after the fork
  // prints it — and the continuation runs on the right thread's machine,
  // where a forgiven commit would leave the guessed value.  The oracle
  // must therefore validate over the thread's full remaining program
  // (Machine::pending_stmts), not the branch alone, and reject the forged
  // verify=dead annotation.
  std::map<std::string, csp::PredictorSpec> preds;
  preds.emplace("v", csp::PredictorSpec::always(Value(99)));
  auto f = csp::fork(csp::call("S", "Echo", {csp::lit(Value(7))}, "v"),
                     csp::compute(sim::microseconds(5)), {"v"}, preds,
                     "bogus");
  auto nf = std::make_shared<csp::ForkStmt>(*f);
  nf->verify["v"] = csp::VerifyMode::kDead;  // true of the branch alone
  auto program = csp::seq({nf, csp::print(csp::var("v"))});

  baseline::Scenario scenario;
  scenario.options.spec.commute_oracle = true;  // force on (Release too)
  scenario.add("X", program);
  scenario.add("S", csp::echo_service(Value(7), sim::microseconds(10)));

  baseline::Scenario sequential = scenario;
  auto pess = baseline::run_scenario(sequential, false);
  auto opt = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(pess.all_completed && opt.all_completed);
  EXPECT_EQ(opt.stats.commute_oracle_violations, 1u);
  EXPECT_EQ(opt.stats.commute_commits, 0u);
  EXPECT_GT(opt.stats.aborts_value_fault, 0u);  // exact verification kept
  std::string why;
  EXPECT_TRUE(trace::compare_traces(pess.trace, opt.trace, &why)) << why;
}

}  // namespace
}  // namespace ocsp
