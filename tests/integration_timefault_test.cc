// Integration tests for the time-fault scenario of Figures 4 and 5:
// X updates server Y (which writes through to Z) and speculatively writes
// to Z directly; when the direct write overtakes the propagation, the
// happens-before cycle is detected, x1 aborts, Z and Y roll back, and the
// whole computation re-executes in the correct order.
#include <gtest/gtest.h>

#include "core/workloads.h"

namespace ocsp {
namespace {

core::WriteThroughParams base_params(bool fault) {
  core::WriteThroughParams p;
  p.force_fault = fault;
  p.net.latency = sim::microseconds(100);
  p.service_time = sim::microseconds(10);
  return p;
}

TEST(TimeFaultIntegration, NoFaultWhenOrderingHolds) {
  auto result =
      baseline::run_scenario(core::write_through_scenario(base_params(false)),
                             true);
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  EXPECT_EQ(result.stats.total_aborts(), 0u) << result.stats.to_string();
  EXPECT_EQ(result.stats.commits, 1u);
}

TEST(TimeFaultIntegration, Fig4CycleDetectedAndAborted) {
  auto result = baseline::run_scenario(
      core::write_through_scenario(base_params(true)), true);
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  EXPECT_GE(result.stats.aborts_time_fault, 1u) << result.stats.to_string();
  // Figure 5: Z (and Y) rolled back, the write re-executed.
  EXPECT_GE(result.stats.rollbacks, 1u);
  EXPECT_GE(result.stats.orphans_discarded, 1u);
}

TEST(TimeFaultIntegration, Fig5ReexecutionMatchesPessimisticTrace) {
  auto scenario = core::write_through_scenario(base_params(true));
  auto pessimistic = baseline::run_scenario(scenario, false);
  auto optimistic = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(pessimistic.all_completed);
  ASSERT_TRUE(optimistic.all_completed);
  std::string why;
  EXPECT_TRUE(
      trace::compare_traces(pessimistic.trace, optimistic.trace, &why))
      << why << "\npessimistic:\n"
      << pessimistic.trace.to_string() << "optimistic:\n"
      << optimistic.trace.to_string();
}

TEST(TimeFaultIntegration, RepeatedTransactionsStayCorrect) {
  auto params = base_params(true);
  params.transactions = 3;
  auto scenario = core::write_through_scenario(params);
  auto pessimistic = baseline::run_scenario(scenario, false);
  auto optimistic = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(pessimistic.all_completed);
  ASSERT_TRUE(optimistic.all_completed) << optimistic.stats.to_string();
  std::string why;
  EXPECT_TRUE(
      trace::compare_traces(pessimistic.trace, optimistic.trace, &why))
      << why;
}

TEST(TimeFaultIntegration, MessageRedeliveryHappens) {
  // Figure 5's annotation: "Z must re-read message C2 after rolling back".
  auto result = baseline::run_scenario(
      core::write_through_scenario(base_params(true)), true);
  ASSERT_TRUE(result.all_completed);
  EXPECT_GE(result.stats.messages_redelivered, 1u)
      << result.stats.to_string();
}

}  // namespace
}  // namespace ocsp
