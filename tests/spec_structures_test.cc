// Unit tests for the protocol data structures: guesses, commit guard sets
// (section 4.1.5 subsumption), commit histories with incarnation start
// tables (section 4.1.2 implicit aborts), and the commit dependency graph
// (section 4.1.4 cycle detection).
#include <gtest/gtest.h>

#include "speculation/cdg.h"
#include "speculation/guard_set.h"
#include "speculation/history.h"
#include "speculation/messages.h"
#include "speculation/predictor.h"

namespace ocsp::spec {
namespace {

GuessId g(ProcessId owner, std::uint32_t inc, std::uint32_t index) {
  return GuessId{owner, inc, index};
}

// ---- GuessId / StateIndex ------------------------------------------------------------

TEST(GuessId, OrderingIsLexicographic) {
  EXPECT_LT(g(0, 0, 1), g(0, 0, 2));
  EXPECT_LT(g(0, 0, 9), g(0, 1, 1));
  EXPECT_LT(g(0, 1, 1), g(1, 0, 0));
  EXPECT_EQ(g(2, 1, 3), g(2, 1, 3));
}

TEST(GuessId, ValidityAndFormatting) {
  EXPECT_FALSE(GuessId{}.valid());
  EXPECT_TRUE(g(0, 0, 1).valid());
  EXPECT_EQ(g(3, 1, 4).to_string(), "g(P3.1.4)");
}

TEST(StateIndex, OrderingMatchesLogicalTime) {
  StateIndex a{0, 0, 0}, b{0, 0, 5}, c{0, 1, 0}, d{1, 0, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
}

// ---- GuardSet ------------------------------------------------------------

TEST(GuardSet, AddAndContains) {
  GuardSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.add(g(1, 0, 3)));
  EXPECT_TRUE(s.contains(g(1, 0, 3)));
  EXPECT_FALSE(s.contains(g(1, 0, 2)));
  EXPECT_EQ(s.size(), 1u);
}

TEST(GuardSet, OnePerOwnerLatestWins) {
  // Section 4.1.5: a dependence on x5 subsumes a dependence on x3.
  GuardSet s;
  s.add(g(1, 0, 3));
  EXPECT_TRUE(s.add(g(1, 0, 5)));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(g(1, 0, 5)));
  EXPECT_FALSE(s.contains(g(1, 0, 3)));
  EXPECT_TRUE(s.covers(g(1, 0, 3)));
  // Adding an older guess is a no-op.
  EXPECT_FALSE(s.add(g(1, 0, 2)));
  EXPECT_TRUE(s.contains(g(1, 0, 5)));
}

TEST(GuardSet, HigherIncarnationSubsumes) {
  GuardSet s;
  s.add(g(1, 0, 9));
  EXPECT_TRUE(s.add(g(1, 1, 2)));
  EXPECT_TRUE(s.contains(g(1, 1, 2)));
  EXPECT_TRUE(s.covers(g(1, 0, 9)));
}

TEST(GuardSet, MergeIsPerOwnerUnion) {
  GuardSet a{g(1, 0, 2), g(2, 0, 1)};
  GuardSet b{g(1, 0, 4), g(3, 0, 7)};
  EXPECT_TRUE(a.merge(b));
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.contains(g(1, 0, 4)));
  EXPECT_TRUE(a.contains(g(2, 0, 1)));
  EXPECT_TRUE(a.contains(g(3, 0, 7)));
  EXPECT_FALSE(a.merge(b));  // idempotent
}

TEST(GuardSet, EraseExactOnly) {
  GuardSet s{g(1, 0, 5)};
  EXPECT_FALSE(s.erase(g(1, 0, 3)));  // not the stored member
  EXPECT_TRUE(s.erase(g(1, 0, 5)));
  EXPECT_TRUE(s.empty());
}

TEST(GuardSet, MinusComputesNewguards) {
  GuardSet tag{g(1, 0, 5), g(2, 0, 3)};
  GuardSet local{g(1, 0, 7)};  // subsumes the owner-1 entry
  auto fresh = tag.minus(local);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0], g(2, 0, 3));
}

TEST(GuardSet, ForOwnerLookup) {
  GuardSet s{g(4, 1, 2)};
  EXPECT_EQ(s.for_owner(4), g(4, 1, 2));
  EXPECT_FALSE(s.for_owner(5).valid());
  EXPECT_TRUE(s.contains_owner(4));
  EXPECT_TRUE(s.erase_owner(4));
  EXPECT_TRUE(s.empty());
}

TEST(GuardSet, ToStringListsMembers) {
  GuardSet s{g(0, 0, 1), g(1, 0, 2)};
  const std::string out = s.to_string();
  EXPECT_NE(out.find("g(P0.0.1)"), std::string::npos);
  EXPECT_NE(out.find("g(P1.0.2)"), std::string::npos);
}

// ---- PeerHistory ------------------------------------------------------------

TEST(PeerHistory, ExplicitStatuses) {
  PeerHistory h;
  EXPECT_EQ(h.status(g(1, 0, 1)), GuessStatus::kUnknown);
  h.set_status(g(1, 0, 1), GuessStatus::kCommitted);
  EXPECT_EQ(h.status(g(1, 0, 1)), GuessStatus::kCommitted);
  h.set_status(g(1, 0, 2), GuessStatus::kAborted);
  EXPECT_EQ(h.status(g(1, 0, 2)), GuessStatus::kAborted);
}

TEST(PeerHistory, UnknownNeverOverwritesFinal) {
  PeerHistory h;
  h.set_status(g(1, 0, 1), GuessStatus::kCommitted);
  h.set_status(g(1, 0, 1), GuessStatus::kUnknown);
  EXPECT_EQ(h.status(g(1, 0, 1)), GuessStatus::kCommitted);
}

TEST(PeerHistory, ImplicitAbortViaIncarnationStart) {
  // Section 4.1.2's worked example: incarnation 2 begins at index 3, so
  // x_{1,1} and x_{1,2} are unaffected but x_{1,3} is implicitly aborted.
  PeerHistory h;
  h.observe_incarnation(2, 3);
  EXPECT_EQ(h.status(g(1, 1, 1)), GuessStatus::kUnknown);
  EXPECT_EQ(h.status(g(1, 1, 2)), GuessStatus::kUnknown);
  EXPECT_EQ(h.status(g(1, 1, 3)), GuessStatus::kAborted);
  EXPECT_EQ(h.status(g(1, 1, 9)), GuessStatus::kAborted);
  EXPECT_EQ(h.status(g(1, 2, 3)), GuessStatus::kUnknown);
}

TEST(PeerHistory, SightingImpliesIncarnationStart) {
  // "Receipt of C2,3 can also be taken as an implicit abort of x1,3."
  PeerHistory h;
  h.set_status(g(1, 2, 3), GuessStatus::kCommitted);
  EXPECT_EQ(h.status(g(1, 1, 3)), GuessStatus::kAborted);
  EXPECT_EQ(h.status(g(1, 1, 2)), GuessStatus::kUnknown);
}

TEST(PeerHistory, StartIndexRefinesDownward) {
  PeerHistory h;
  h.observe_incarnation(1, 5);
  EXPECT_EQ(h.status(g(1, 0, 4)), GuessStatus::kUnknown);
  h.observe_incarnation(1, 2);
  EXPECT_EQ(h.status(g(1, 0, 4)), GuessStatus::kAborted);
  EXPECT_EQ(h.latest_incarnation(), 1u);
}

TEST(HistoryTable, AggregateQueries) {
  HistoryTable t;
  t.peer(1).set_status(g(1, 0, 1), GuessStatus::kAborted);
  t.peer(2).set_status(g(2, 0, 1), GuessStatus::kCommitted);
  GuardSet guard{g(1, 0, 1), g(2, 0, 1), g(3, 0, 1)};
  EXPECT_TRUE(t.any_aborted(guard));
  auto unresolved = t.unresolved_of(guard);
  ASSERT_EQ(unresolved.size(), 2u);  // aborted + unknown; committed dropped
  GuardSet clean{g(2, 0, 1)};
  EXPECT_FALSE(t.any_aborted(clean));
}

// ---- Cdg ------------------------------------------------------------

TEST(Cdg, AddNodesAndEdges) {
  Cdg cdg;
  EXPECT_FALSE(cdg.has_node(g(0, 0, 1)));
  cdg.add_node(g(0, 0, 1));
  EXPECT_TRUE(cdg.has_node(g(0, 0, 1)));
  auto cycle = cdg.add_edge(g(0, 0, 1), g(1, 0, 1));
  EXPECT_TRUE(cycle.empty());
  EXPECT_TRUE(cdg.has_edge(g(0, 0, 1), g(1, 0, 1)));
  EXPECT_EQ(cdg.node_count(), 2u);
  EXPECT_EQ(cdg.edge_count(), 1u);
}

TEST(Cdg, DetectsTwoCycle) {
  // Figure 7's cycle: x1 -> z1 -> x1.
  Cdg cdg;
  cdg.add_edge(g(0, 0, 1), g(1, 0, 1));
  auto cycle = cdg.add_edge(g(1, 0, 1), g(0, 0, 1));
  ASSERT_EQ(cycle.size(), 2u);
}

TEST(Cdg, DetectsSelfLoop) {
  Cdg cdg;
  auto cycle = cdg.add_edge(g(0, 0, 1), g(0, 0, 1));
  ASSERT_EQ(cycle.size(), 1u);
}

TEST(Cdg, DetectsLongCycle) {
  Cdg cdg;
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_TRUE(cdg.add_edge(g(p, 0, 1), g(p + 1, 0, 1)).empty());
  }
  auto cycle = cdg.add_edge(g(4, 0, 1), g(0, 0, 1));
  EXPECT_EQ(cycle.size(), 5u);
}

TEST(Cdg, NoFalseCycleOnDag) {
  Cdg cdg;
  cdg.add_edge(g(0, 0, 1), g(1, 0, 1));
  cdg.add_edge(g(0, 0, 1), g(2, 0, 1));
  EXPECT_TRUE(cdg.add_edge(g(1, 0, 1), g(2, 0, 1)).empty());
  EXPECT_TRUE(cdg.add_edge(g(2, 0, 1), g(3, 0, 1)).empty());
}

TEST(Cdg, RemoveNodeDropsEdges) {
  Cdg cdg;
  cdg.add_edge(g(0, 0, 1), g(1, 0, 1));
  cdg.add_edge(g(1, 0, 1), g(2, 0, 1));
  cdg.remove_node(g(1, 0, 1));
  EXPECT_FALSE(cdg.has_node(g(1, 0, 1)));
  EXPECT_FALSE(cdg.has_edge(g(0, 0, 1), g(1, 0, 1)));
  EXPECT_EQ(cdg.edge_count(), 0u);
  // Removing the middle node breaks the potential cycle.
  EXPECT_TRUE(cdg.add_edge(g(2, 0, 1), g(0, 0, 1)).empty());
}

TEST(Cdg, PredecessorsAndClosure) {
  Cdg cdg;
  cdg.add_edge(g(0, 0, 1), g(1, 0, 1));
  cdg.add_edge(g(2, 0, 1), g(1, 0, 1));
  cdg.add_edge(g(1, 0, 1), g(3, 0, 1));
  auto preds = cdg.predecessors(g(1, 0, 1));
  EXPECT_EQ(preds.size(), 2u);
  auto closure = cdg.closure_from(g(0, 0, 1));
  // 0 -> 1 -> 3: the closure contains all three.
  EXPECT_EQ(closure.size(), 3u);
}

TEST(Cdg, ClosureOfMissingNodeIsEmpty) {
  Cdg cdg;
  EXPECT_TRUE(cdg.closure_from(g(9, 0, 1)).empty());
}

// ---- Predictors ------------------------------------------------------------

TEST(Predictor, ConstantAlwaysGuessesSame) {
  PredictorState p;
  csp::Env env;
  auto spec = csp::PredictorSpec::always(csp::Value(true));
  EXPECT_EQ(p.guess("s", "v", spec, env), csp::Value(true));
}

TEST(Predictor, ExprEvaluatesOverForkEnv) {
  PredictorState p;
  csp::Env env;
  env.set("i", csp::Value(6));
  auto spec = csp::PredictorSpec::from_expr(csp::var("i"));
  EXPECT_EQ(p.guess("s", "v", spec, env), csp::Value(6));
}

TEST(Predictor, LastCommittedTracksObservations) {
  PredictorState p;
  csp::Env env;
  auto spec = csp::PredictorSpec::last_committed(csp::Value(0));
  EXPECT_EQ(p.guess("s", "v", spec, env), csp::Value(0));
  p.observe("s", "v", csp::Value(42));
  EXPECT_EQ(p.guess("s", "v", spec, env), csp::Value(42));
  // Different site/variable keys are independent.
  EXPECT_EQ(p.guess("other", "v", spec, env), csp::Value(0));
  EXPECT_EQ(p.guess("s", "w", spec, env), csp::Value(0));
}

TEST(Predictor, StrideExtrapolates) {
  PredictorState p;
  csp::Env env;
  auto spec = csp::PredictorSpec::strided(csp::Value(100), 10);
  EXPECT_EQ(p.guess("s", "v", spec, env), csp::Value(100));
  p.observe("s", "v", csp::Value(7));
  EXPECT_EQ(p.guess("s", "v", spec, env), csp::Value(17));
}

// ---- Messages ------------------------------------------------------------

TEST(Messages, DataMessageDescribe) {
  DataMessage m;
  m.data_kind = DataKind::kCall;
  m.op = "Update";
  m.args = {csp::Value(1)};
  m.reqid = 5;
  m.guard.add(g(0, 0, 1));
  EXPECT_EQ(m.kind(), "CALL");
  const std::string d = m.describe();
  EXPECT_NE(d.find("Update"), std::string::npos);
  EXPECT_NE(d.find("g(P0.0.1)"), std::string::npos);
  EXPECT_GT(m.wire_size(), 0u);
}

TEST(Messages, ControlMessageKinds) {
  ControlMessage c;
  c.control = ControlKind::kPrecedence;
  c.subject = g(1, 0, 2);
  c.guard.add(g(0, 0, 1));
  EXPECT_EQ(c.kind(), "PRECEDENCE");
  EXPECT_NE(c.describe().find("g(P1.0.2)"), std::string::npos);
  c.control = ControlKind::kCommit;
  EXPECT_EQ(c.kind(), "COMMIT");
  c.control = ControlKind::kAbort;
  EXPECT_EQ(c.kind(), "ABORT");
}

}  // namespace
}  // namespace ocsp::spec
