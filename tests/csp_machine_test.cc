// Unit tests for the expression language and the checkpointable step
// interpreter — the substrate property the speculation layer relies on:
// a Machine is a value, a checkpoint is a copy, a rollback is an
// assignment.
#include <gtest/gtest.h>

#include "csp/machine.h"
#include "csp/service.h"

namespace ocsp::csp {
namespace {

Machine make(StmtPtr program, Env env = {}) {
  return Machine(std::move(program), std::move(env), util::Rng(7));
}

// ---- Expressions ------------------------------------------------------------

TEST(Expr, ConstAndVar) {
  Env env;
  env.set("x", Value(5));
  EXPECT_EQ(lit(Value(3))->eval(env), Value(3));
  EXPECT_EQ(var("x")->eval(env), Value(5));
}

TEST(Expr, Arithmetic) {
  Env env;
  EXPECT_EQ(add(lit(Value(2)), lit(Value(3)))->eval(env), Value(5));
  EXPECT_EQ(sub(lit(Value(2)), lit(Value(3)))->eval(env), Value(-1));
  EXPECT_EQ(mul(lit(Value(2)), lit(Value(3)))->eval(env), Value(6));
  EXPECT_EQ(div_(lit(Value(7)), lit(Value(2)))->eval(env), Value(3));
  EXPECT_EQ(mod(lit(Value(7)), lit(Value(4)))->eval(env), Value(3));
  EXPECT_EQ(neg(lit(Value(5)))->eval(env), Value(-5));
}

TEST(Expr, Comparisons) {
  Env env;
  EXPECT_EQ(eq(lit(Value(1)), lit(Value(1)))->eval(env), Value(true));
  EXPECT_EQ(ne(lit(Value(1)), lit(Value(2)))->eval(env), Value(true));
  EXPECT_EQ(lt(lit(Value(1)), lit(Value(2)))->eval(env), Value(true));
  EXPECT_EQ(le(lit(Value(2)), lit(Value(2)))->eval(env), Value(true));
  EXPECT_EQ(gt(lit(Value(3)), lit(Value(2)))->eval(env), Value(true));
  EXPECT_EQ(ge(lit(Value(1)), lit(Value(2)))->eval(env), Value(false));
}

TEST(Expr, LogicShortCircuits) {
  Env env;  // "boom" is unbound: evaluating it would abort
  EXPECT_EQ(and_(lit(Value(false)), var("boom"))->eval(env), Value(false));
  EXPECT_EQ(or_(lit(Value(true)), var("boom"))->eval(env), Value(true));
  EXPECT_EQ(not_(lit(Value(0)))->eval(env), Value(true));
}

TEST(Expr, ListAndIndex) {
  Env env;
  env.set("l", Value(ValueList{Value(10), Value(20)}));
  EXPECT_EQ(index(var("l"), lit(Value(1)))->eval(env), Value(20));
  EXPECT_EQ(list_of({lit(Value(1)), lit(Value(2))})->eval(env),
            Value(ValueList{Value(1), Value(2)}));
}

TEST(Expr, CollectReads) {
  std::set<std::string> reads;
  add(var("a"), mul(var("b"), lit(Value(2))))->collect_reads(reads);
  EXPECT_EQ(reads, (std::set<std::string>{"a", "b"}));
}

// ---- Machine basics ------------------------------------------------------------

TEST(Machine, AssignSeqIfWhile) {
  auto prog = seq({
      assign("x", lit(Value(0))),
      while_(lt(var("x"), lit(Value(5))),
             assign("x", add(var("x"), lit(Value(1))))),
      if_(eq(var("x"), lit(Value(5))), assign("y", lit(Value("five"))),
          assign("y", lit(Value("other")))),
  });
  Machine m = make(prog);
  Effect e = m.step();
  EXPECT_EQ(e.kind, Effect::Kind::kDone);
  EXPECT_EQ(m.env().get("x"), Value(5));
  EXPECT_EQ(m.env().get("y"), Value("five"));
  EXPECT_TRUE(m.done());
}

TEST(Machine, IfWithoutElse) {
  auto prog = seq({
      assign("x", lit(Value(1))),
      if_(lit(Value(false)), assign("x", lit(Value(2)))),
  });
  Machine m = make(prog);
  m.step();
  EXPECT_EQ(m.env().get("x"), Value(1));
}

TEST(Machine, CallEffectPausesAndResumes) {
  auto prog = seq({
      call("S", "Op", {lit(Value(1)), lit(Value(2))}, "r"),
      assign("after", var("r")),
  });
  Machine m = make(prog);
  Effect e = m.step();
  ASSERT_EQ(e.kind, Effect::Kind::kCall);
  EXPECT_EQ(e.target, "S");
  EXPECT_EQ(e.op, "Op");
  EXPECT_EQ(e.args, (ValueList{Value(1), Value(2)}));
  EXPECT_EQ(m.state(), MachineState::kAwaitReply);
  m.resume_with_value(Value(42));
  e = m.step();
  EXPECT_EQ(e.kind, Effect::Kind::kDone);
  EXPECT_EQ(m.env().get("after"), Value(42));
}

TEST(Machine, SendDoesNotBlock) {
  auto prog = seq({
      send("S", "Ping", {lit(Value(1))}),
      assign("x", lit(Value(9))),
  });
  Machine m = make(prog);
  Effect e = m.step();
  ASSERT_EQ(e.kind, Effect::Kind::kSend);
  EXPECT_EQ(m.state(), MachineState::kReady);
  e = m.step();
  EXPECT_EQ(e.kind, Effect::Kind::kDone);
  EXPECT_EQ(m.env().get("x"), Value(9));
}

TEST(Machine, ReceiveBindsRequestMetadata) {
  auto prog = seq({
      receive(),
      assign("sum", add(arg(0), arg(1))),
      reply(var("sum")),
  });
  Machine m = make(prog);
  Effect e = m.step();
  ASSERT_EQ(e.kind, Effect::Kind::kReceive);
  m.deliver("Add", {Value(3), Value(4)}, /*caller=*/5, /*reqid=*/77,
            /*is_call=*/true);
  e = m.step();
  ASSERT_EQ(e.kind, Effect::Kind::kReply);
  EXPECT_EQ(e.value, Value(7));
  EXPECT_EQ(e.reply_caller, 5);
  EXPECT_EQ(e.reply_reqid, 77);
  EXPECT_EQ(m.env().get("__op"), Value("Add"));
  EXPECT_EQ(m.env().get("__is_call"), Value(true));
}

TEST(Machine, ComputeEffectCarriesDuration) {
  Machine m = make(seq({compute(1234), assign("x", lit(Value(1)))}));
  Effect e = m.step();
  ASSERT_EQ(e.kind, Effect::Kind::kCompute);
  EXPECT_EQ(e.duration, 1234);
  EXPECT_EQ(m.state(), MachineState::kAwaitCompute);
  m.resume();
  EXPECT_EQ(m.step().kind, Effect::Kind::kDone);
}

TEST(Machine, PrintEffect) {
  Machine m = make(seq({print(lit(Value("hello")))}));
  Effect e = m.step();
  ASSERT_EQ(e.kind, Effect::Kind::kPrint);
  EXPECT_EQ(e.value, Value("hello"));
}

TEST(Machine, NativeMutatesEnv) {
  auto prog = seq({
      native("bump", [](Env& env, util::Rng&) { env.set("n", Value(1)); }),
  });
  Machine m = make(prog);
  m.step();
  EXPECT_EQ(m.env().get("n"), Value(1));
}

TEST(Machine, HintBehavesAsNop) {
  Machine m = make(seq({hint({}, "site"), assign("x", lit(Value(1)))}));
  EXPECT_EQ(m.step().kind, Effect::Kind::kDone);
  EXPECT_EQ(m.env().get("x"), Value(1));
}

// ---- Fork handling ------------------------------------------------------------

std::shared_ptr<const ForkStmt> simple_fork() {
  std::map<std::string, PredictorSpec> preds;
  preds.emplace("a", PredictorSpec::always(Value(1)));
  return fork(assign("a", lit(Value(1))),        // left: S1
              assign("b", add(var("a"), var("a"))),  // right: S2
              {"a"}, std::move(preds), "site");
}

TEST(Machine, ForkEffectAndLeftBranch) {
  auto prog = seq({simple_fork(), assign("tail", lit(Value(1)))});
  Machine m = make(prog);
  Effect e = m.step();
  ASSERT_EQ(e.kind, Effect::Kind::kFork);
  ASSERT_NE(e.fork, nullptr);
  EXPECT_EQ(m.state(), MachineState::kAtFork);

  Machine right = m;  // copy while paused at the fork
  m.take_fork_branch(true);
  EXPECT_EQ(m.step().kind, Effect::Kind::kDone);
  EXPECT_EQ(m.env().get("a"), Value(1));
  // Left thread never runs the continuation.
  EXPECT_FALSE(m.env().has("tail"));

  right.take_fork_branch(false);
  right.env().set("a", Value(10));  // the guessed value
  EXPECT_EQ(right.step().kind, Effect::Kind::kDone);
  EXPECT_EQ(right.env().get("b"), Value(20));
  // Right thread does run the continuation.
  EXPECT_EQ(right.env().get("tail"), Value(1));
}

TEST(Machine, ForkSequentialRunsLeftThenRightThenTail) {
  auto prog = seq({simple_fork(), assign("tail", var("b"))});
  Machine m = make(prog);
  ASSERT_EQ(m.step().kind, Effect::Kind::kFork);
  m.take_fork_sequential();
  EXPECT_EQ(m.step().kind, Effect::Kind::kDone);
  EXPECT_EQ(m.env().get("a"), Value(1));
  EXPECT_EQ(m.env().get("b"), Value(2));
  EXPECT_EQ(m.env().get("tail"), Value(2));
}

// ---- Checkpoint / rollback ------------------------------------------------------------

TEST(Machine, CopyCheckpointRestoresMidExecution) {
  auto prog = seq({
      assign("x", lit(Value(1))),
      call("S", "Op", {}, "r"),
      assign("x", add(var("x"), var("r"))),
      call("S", "Op2", {}, "r2"),
      assign("x", add(var("x"), var("r2"))),
  });
  Machine m = make(prog);
  ASSERT_EQ(m.step().kind, Effect::Kind::kCall);
  Machine checkpoint = m;  // paused at first call
  m.resume_with_value(Value(10));
  ASSERT_EQ(m.step().kind, Effect::Kind::kCall);
  m.resume_with_value(Value(100));
  ASSERT_EQ(m.step().kind, Effect::Kind::kDone);
  EXPECT_EQ(m.env().get("x"), Value(111));

  // Roll back and replay with different values.
  m = checkpoint;
  EXPECT_EQ(m.state(), MachineState::kAwaitReply);
  m.resume_with_value(Value(20));
  ASSERT_EQ(m.step().kind, Effect::Kind::kCall);
  m.resume_with_value(Value(200));
  m.step();
  EXPECT_EQ(m.env().get("x"), Value(221));
}

TEST(Machine, RngIsPartOfCheckpointedState) {
  auto prog = seq({
      native("draw", [](Env& env, util::Rng& rng) {
        env.set("d", Value(static_cast<std::int64_t>(rng.next() % 1000)));
      }),
  });
  Machine m = make(seq({compute(1), prog}));
  ASSERT_EQ(m.step().kind, Effect::Kind::kCompute);
  Machine checkpoint = m;
  m.resume();
  m.step();
  const Value first = m.env().get("d");
  Machine replay = checkpoint;
  replay.resume();
  replay.step();
  EXPECT_EQ(replay.env().get("d"), first);
}

TEST(Machine, EmptyMachineIsDone) {
  Machine m;
  EXPECT_TRUE(m.done());
}

TEST(Machine, DepthReflectsNesting) {
  auto prog = seq({while_(lit(Value(false)), nop())});
  Machine m = make(prog);
  EXPECT_GT(m.depth(), 0u);
  m.step();
  EXPECT_EQ(m.depth(), 0u);
}

// ---- Service builders ------------------------------------------------------------

TEST(Service, NativeServiceRepliesToCall) {
  std::map<std::string, NativeHandler> handlers;
  handlers["Double"] = [](const ValueList& args, Env&, util::Rng&) {
    return Value(args[0].as_int() * 2);
  };
  Machine m = make(native_service(std::move(handlers)));
  ASSERT_EQ(m.step().kind, Effect::Kind::kReceive);
  m.deliver("Double", {Value(21)}, 3, 9, true);
  Effect e = m.step();
  ASSERT_EQ(e.kind, Effect::Kind::kReply);
  EXPECT_EQ(e.value, Value(42));
  // Loops back to the next receive.
  EXPECT_EQ(m.step().kind, Effect::Kind::kReceive);
}

TEST(Service, NativeServiceUnknownOpRepliesDefault) {
  ServiceConfig config;
  config.unknown_op_reply = Value("nope");
  Machine m = make(native_service({}, config));
  m.step();
  m.deliver("Mystery", {}, 1, 2, true);
  Effect e = m.step();
  ASSERT_EQ(e.kind, Effect::Kind::kReply);
  EXPECT_EQ(e.value, Value("nope"));
}

TEST(Service, OneWaySendGetsNoReply) {
  std::map<std::string, NativeHandler> handlers;
  handlers["Note"] = [](const ValueList&, Env& state, util::Rng&) {
    state.set("noted", Value(true));
    return Value();
  };
  Machine m = make(native_service(std::move(handlers)));
  m.step();
  m.deliver("Note", {}, 1, 2, /*is_call=*/false);
  Effect e = m.step();
  EXPECT_EQ(e.kind, Effect::Kind::kReceive);  // straight to the next loop
  EXPECT_EQ(m.env().get("noted"), Value(true));
}

TEST(Service, ServiceStateAccumulatesAcrossRequests) {
  std::map<std::string, NativeHandler> handlers;
  handlers["Inc"] = [](const ValueList&, Env& state, util::Rng&) {
    const auto n = state.get_or("n", Value(0)).as_int();
    state.set("n", Value(n + 1));
    return Value(n + 1);
  };
  Machine m = make(native_service(std::move(handlers)));
  for (int i = 1; i <= 3; ++i) {
    m.step();
    m.deliver("Inc", {}, 1, i, true);
    Effect e = m.step();
    ASSERT_EQ(e.kind, Effect::Kind::kReply);
    EXPECT_EQ(e.value, Value(i));
  }
}

TEST(Service, IrServiceLoopDispatches) {
  std::map<std::string, StmtPtr> handlers;
  handlers["Neg"] = seq({reply(neg(arg(0)))});
  Machine m = make(service_loop(std::move(handlers)));
  m.step();
  m.deliver("Neg", {Value(5)}, 1, 2, true);
  Effect e = m.step();
  ASSERT_EQ(e.kind, Effect::Kind::kReply);
  EXPECT_EQ(e.value, Value(-5));
}

TEST(Service, EchoServiceRepliesConstant) {
  Machine m = make(echo_service(Value(1), 0));
  m.step();
  m.deliver("Whatever", {}, 1, 2, true);
  Effect e = m.step();
  ASSERT_EQ(e.kind, Effect::Kind::kReply);
  EXPECT_EQ(e.value, Value(1));
}

TEST(Program, ToStringRendersStructure) {
  auto prog = seq({
      assign("x", lit(Value(1))),
      if_(var("x"), print(var("x"))),
      while_(lit(Value(false)), nop()),
  });
  const std::string s = to_string(prog);
  EXPECT_NE(s.find("x = 1"), std::string::npos);
  EXPECT_NE(s.find("if x"), std::string::npos);
  EXPECT_NE(s.find("while"), std::string::npos);
}

}  // namespace
}  // namespace ocsp::csp
