// State garbage collection: a long-running server's retained speculative
// state (checkpoints, replay metadata, input log) must be bounded by the
// window of in-doubt guesses, not by the length of the run.
#include <gtest/gtest.h>

#include "core/workloads.h"
#include "speculation/runtime.h"

namespace ocsp {
namespace {

core::PutLineParams long_run(int lines,
                             spec::RollbackStrategy strategy) {
  core::PutLineParams p;
  p.lines = lines;
  p.net.latency = sim::microseconds(200);
  p.spec.rollback = strategy;
  return p;
}

TEST(Gc, ServerCheckpointsBoundedUnderCheckpointStrategy) {
  // Without GC the server would retain one checkpoint per tagged request.
  auto small = baseline::make_runtime(
      core::putline_scenario(
          long_run(16, spec::RollbackStrategy::kCheckpointEveryInterval)),
      true);
  small->run(sim::seconds(60));
  auto large = baseline::make_runtime(
      core::putline_scenario(
          long_run(128, spec::RollbackStrategy::kCheckpointEveryInterval)),
      true);
  large->run(sim::seconds(60));
  ASSERT_TRUE(large->process(0).completed());
  const auto small_cp = small->process(small->find("Y")).checkpoint_count();
  const auto large_cp = large->process(large->find("Y")).checkpoint_count();
  // Retained state does not grow with run length (8x the traffic).
  EXPECT_LE(large_cp, small_cp + 2) << "small=" << small_cp
                                    << " large=" << large_cp;
  EXPECT_GT(large->process(large->find("Y")).stats().checkpoints_pruned, 0u);
}

TEST(Gc, InputLogBoundedUnderReplayStrategy) {
  auto params = long_run(128, spec::RollbackStrategy::kReplayFromLog);
  params.spec.replay_checkpoint_every = 8;
  auto rt = baseline::make_runtime(core::putline_scenario(params), true);
  rt->run(sim::seconds(60));
  ASSERT_TRUE(rt->process(0).completed());
  const auto& server = rt->process(rt->find("Y"));
  // All guesses resolved: at most one checkpoint period of log remains.
  EXPECT_LT(server.input_log_size(), 20u);
  EXPECT_GT(server.stats().log_entries_pruned, 64u);
}

TEST(Gc, PruningNeverBreaksRollback) {
  // Mix GC pressure with faults: rollbacks must still find their state.
  for (auto strategy : {spec::RollbackStrategy::kCheckpointEveryInterval,
                        spec::RollbackStrategy::kReplayFromLog}) {
    core::PutLineParams p = long_run(64, strategy);
    p.fail_probability = 0.05;
    auto scenario = core::putline_scenario(p);
    auto pess = baseline::run_scenario(scenario, false, sim::seconds(60));
    auto opt = baseline::run_scenario(scenario, true, sim::seconds(60));
    ASSERT_TRUE(opt.all_completed) << opt.stats.to_string();
    std::string why;
    EXPECT_TRUE(trace::compare_traces(pess.trace, opt.trace, &why)) << why;
  }
}

TEST(Gc, ClientStateAlsoPruned) {
  auto rt = baseline::make_runtime(
      core::putline_scenario(
          long_run(128, spec::RollbackStrategy::kCheckpointEveryInterval)),
      true);
  rt->run(sim::seconds(60));
  ASSERT_TRUE(rt->process(0).completed());
  // The client created 128 speculative threads; once everything committed,
  // the dead threads' checkpoints are pruned and only the live tail stays.
  EXPECT_LT(rt->process(0).checkpoint_count(), 8u);
  EXPECT_GT(rt->process(0).stats().checkpoints_pruned, 100u);
}

}  // namespace
}  // namespace ocsp
