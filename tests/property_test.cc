// Property-based tests of Theorem 1: for randomized client programs and
// network conditions, the optimistic parallelization must produce exactly
// the committed partial traces of the pessimistic execution — including
// under non-FIFO links, where speculative calls can overtake their
// predecessors at a *stateful* server and the protocol has to detect the
// time fault and re-execute in order.
#include <gtest/gtest.h>

#include <tuple>

#include "baseline/scenario.h"
#include "core/workloads.h"
#include "csp/service.h"
#include "trace/causality.h"
#include "transform/transform.h"
#include "util/rng.h"

namespace ocsp {
namespace {

using csp::lit;
using csp::Value;
using csp::var;

// ---------------------------------------------------------------------------
// Random client generator
// ---------------------------------------------------------------------------

csp::ExprPtr random_expr(util::Rng& rng, int depth = 0) {
  const std::string v = "v" + std::to_string(rng.uniform_int(0, 3));
  if (depth >= 2 || rng.bernoulli(0.4)) {
    return rng.bernoulli(0.5) ? var(v)
                              : lit(Value(rng.uniform_int(0, 9)));
  }
  auto a = random_expr(rng, depth + 1);
  auto b = random_expr(rng, depth + 1);
  switch (rng.uniform_int(0, 2)) {
    case 0:
      return csp::add(std::move(a), std::move(b));
    case 1:
      return csp::sub(std::move(a), std::move(b));
    default:
      return csp::mul(std::move(a), std::move(b));
  }
}

csp::StmtPtr random_client(util::Rng& rng, int length) {
  std::vector<csp::StmtPtr> body;
  for (int i = 0; i < 4; ++i) {
    body.push_back(csp::assign("v" + std::to_string(i), lit(Value(i))));
  }
  for (int i = 0; i < length; ++i) {
    const std::string dst = "v" + std::to_string(rng.uniform_int(0, 3));
    switch (rng.uniform_int(0, 9)) {
      case 0:
      case 1:
      case 2: {  // pure call: doubled-plus-one echo
        const std::string server = rng.bernoulli(0.5) ? "SA" : "SB";
        body.push_back(csp::call(server, "F", {random_expr(rng)}, dst));
        break;
      }
      case 3:
      case 4: {  // stateful call: server-side counter
        const std::string server = rng.bernoulli(0.5) ? "SA" : "SB";
        body.push_back(csp::call(server, "G", {random_expr(rng)}, dst));
        break;
      }
      case 5:
      case 6:
        body.push_back(csp::assign(dst, random_expr(rng)));
        break;
      case 7:
        body.push_back(csp::compute(sim::microseconds(
            static_cast<sim::Time>(rng.uniform_int(1, 40)))));
        break;
      case 8:
        body.push_back(csp::print(random_expr(rng)));
        break;
      default:
        body.push_back(csp::if_(csp::gt(random_expr(rng), lit(Value(5))),
                                csp::assign(dst, random_expr(rng)),
                                csp::print(random_expr(rng))));
        break;
    }
  }
  // Observable summary so the trace is sensitive to every variable.
  body.push_back(csp::print(
      csp::list_of({var("v0"), var("v1"), var("v2"), var("v3")})));
  return csp::seq(std::move(body));
}

csp::StmtPtr stateful_server() {
  std::map<std::string, csp::NativeHandler> handlers;
  handlers["F"] = [](const csp::ValueList& args, csp::Env&, util::Rng&) {
    return Value(args[0].as_int() * 2 + 1);
  };
  handlers["G"] = [](const csp::ValueList& args, csp::Env& state,
                     util::Rng&) {
    const std::int64_t n = state.get_or("n", Value(0)).as_int();
    state.set("n", Value(n + args[0].as_int() + 1));
    return Value(n);
  };
  csp::ServiceConfig sc;
  sc.service_time = sim::microseconds(7);
  return csp::native_service(std::move(handlers), sc);
}

struct RandomCase {
  std::uint64_t seed;
  bool fifo;
  sim::Time latency;
};

class RandomProgramProperty
    : public ::testing::TestWithParam<std::tuple<int, bool, int, bool>> {};

TEST_P(RandomProgramProperty, OptimisticTraceEqualsPessimistic) {
  const auto [seed, fifo, latency_us, use_replay] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  csp::StmtPtr client = random_client(rng, 14);
  transform::StreamingOptions opts;
  opts.predictor = [](const csp::CallStmt&) {
    // Reasonable-but-fallible guess: last committed return per site.
    return csp::PredictorSpec::last_committed(Value(0));
  };
  csp::StmtPtr streamed = transform::stream_calls(client, opts).program;

  baseline::Scenario scenario;
  scenario.options.seed = static_cast<std::uint64_t>(seed);
  scenario.options.default_link.latency = net::fixed_latency(
      sim::microseconds(latency_us));
  scenario.options.default_link.fifo = fifo;
  scenario.options.spec.retry_limit = 4;
  scenario.options.spec.rollback =
      use_replay ? spec::RollbackStrategy::kReplayFromLog
                 : spec::RollbackStrategy::kCheckpointEveryInterval;
  scenario.options.spec.replay_checkpoint_every = 4;  // stress replay
  scenario.add("X", streamed);
  scenario.add("SA", stateful_server());
  scenario.add("SB", stateful_server());

  auto pessimistic =
      baseline::run_scenario(scenario, false, sim::seconds(60));
  auto optimistic = baseline::run_scenario(scenario, true, sim::seconds(60));
  ASSERT_TRUE(pessimistic.all_completed) << "seed " << seed;
  ASSERT_TRUE(optimistic.all_completed)
      << "seed " << seed << " " << optimistic.stats.to_string();
  std::string why;
  EXPECT_TRUE(
      trace::compare_traces(pessimistic.trace, optimistic.trace, &why))
      << "seed " << seed << ": " << why << "\noptimistic stats: "
      << optimistic.stats.to_string() << "\npessimistic:\n"
      << pessimistic.trace.to_string() << "optimistic:\n"
      << optimistic.trace.to_string();
  // Sanity: the protocol did something and its books balance.
  EXPECT_LE(optimistic.stats.commits,
            optimistic.stats.forks - optimistic.stats.sequential_forks);
  // The committed execution is causally sound: every receive matches its
  // send and the happens-before relation is acyclic.
  auto causal = trace::check_causality(optimistic.trace);
  EXPECT_TRUE(causal) << "seed " << seed << ": " << causal.why;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomProgramProperty,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Values(true, false),
                       ::testing::Values(50, 400),
                       ::testing::Values(false, true)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_fifo" : "_reorder") + "_lat" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ? "_replay" : "_checkpoint");
    });

// ---------------------------------------------------------------------------
// Parameter sweeps over the canonical workloads
// ---------------------------------------------------------------------------

class PutLineFailureSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PutLineFailureSweep, TraceEquality) {
  const auto [seed, fail_pct] = GetParam();
  core::PutLineParams p;
  p.lines = 10;
  p.seed = static_cast<std::uint64_t>(seed) + 1;
  p.fail_probability = fail_pct / 100.0;
  p.net.latency = sim::microseconds(250);
  auto scenario = core::putline_scenario(p);
  auto pess = baseline::run_scenario(scenario, false, sim::seconds(60));
  auto opt = baseline::run_scenario(scenario, true, sim::seconds(60));
  ASSERT_TRUE(pess.all_completed);
  ASSERT_TRUE(opt.all_completed) << opt.stats.to_string();
  std::string why;
  EXPECT_TRUE(trace::compare_traces(pess.trace, opt.trace, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PutLineFailureSweep,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(0, 10, 30,
                                                              60, 100)));

class DbFsFailureSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DbFsFailureSweep, TraceEquality) {
  const auto [seed, fail_pct] = GetParam();
  core::DbFsParams p;
  p.transactions = 6;
  p.seed = static_cast<std::uint64_t>(seed) * 31 + 7;
  p.update_fail_probability = fail_pct / 100.0;
  p.net.latency = sim::microseconds(300);
  auto scenario = core::db_fs_scenario(p);
  auto pess = baseline::run_scenario(scenario, false, sim::seconds(60));
  auto opt = baseline::run_scenario(scenario, true, sim::seconds(60));
  ASSERT_TRUE(pess.all_completed);
  ASSERT_TRUE(opt.all_completed) << opt.stats.to_string();
  std::string why;
  EXPECT_TRUE(trace::compare_traces(pess.trace, opt.trace, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DbFsFailureSweep,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(0, 25, 50,
                                                              75)));

// Jittered (randomly delayed) links across workloads.
class JitterSweep : public ::testing::TestWithParam<int> {};

TEST_P(JitterSweep, PipelineTraceEquality) {
  core::PipelineParams p;
  p.calls = 6;
  p.chain_depth = 2;
  p.seed = static_cast<std::uint64_t>(GetParam()) * 101 + 3;
  p.net.latency = sim::microseconds(100);
  p.net.jitter = sim::microseconds(400);
  auto scenario = core::pipeline_scenario(p);
  auto pess = baseline::run_scenario(scenario, false, sim::seconds(60));
  auto opt = baseline::run_scenario(scenario, true, sim::seconds(60));
  ASSERT_TRUE(pess.all_completed);
  ASSERT_TRUE(opt.all_completed) << opt.stats.to_string();
  std::string why;
  EXPECT_TRUE(trace::compare_traces(pess.trace, opt.trace, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Sweep, JitterSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace ocsp
