// Unit and property tests for the persistent structural-sharing map that
// backs csp::Env.  The property test drives PersistentValueMap and a
// std::map reference model with the same randomized operation sequence,
// taking snapshots at random points and checking — after arbitrary later
// mutations — that every snapshot still equals the reference state it was
// taken from.  That is exactly the guarantee checkpoint/rollback leans on.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "csp/persistent_map.h"
#include "util/rng.h"

namespace ocsp::csp {
namespace {

using Model = std::map<std::string, Value>;

// The persistent map must iterate in exactly the reference model's order
// (sorted keys) with structurally equal values.
void expect_matches_model(const PersistentValueMap& map, const Model& model,
                          const std::string& context) {
  ASSERT_EQ(map.size(), model.size()) << context;
  auto mit = model.begin();
  for (auto it = map.begin(); it != map.end(); ++it, ++mit) {
    ASSERT_NE(mit, model.end()) << context;
    EXPECT_EQ((*it).first, mit->first) << context;
    EXPECT_EQ((*it).second, mit->second)
        << context << " at key " << mit->first;
  }
  EXPECT_EQ(mit, model.end()) << context;
}

TEST(PersistentValueMap, InsertFindErase) {
  PersistentValueMap m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find("a"), nullptr);

  m.set("a", Value(1));
  m.set("b", Value("two"));
  ASSERT_NE(m.find("a"), nullptr);
  EXPECT_EQ(*m.find("a"), Value(1));
  EXPECT_EQ(*m.find("b"), Value("two"));
  EXPECT_EQ(m.size(), 2u);

  m.set("a", Value(10));  // overwrite
  EXPECT_EQ(*m.find("a"), Value(10));
  EXPECT_EQ(m.size(), 2u);

  EXPECT_TRUE(m.erase("a"));
  EXPECT_FALSE(m.erase("a"));  // already gone
  EXPECT_EQ(m.find("a"), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(PersistentValueMap, IterationIsSortedAndDeterministic) {
  // Insert in scrambled order; iteration must come back sorted, twice.
  PersistentValueMap m;
  const std::vector<std::string> keys = {"delta", "alpha", "echo", "bravo",
                                         "charlie"};
  for (const auto& k : keys) m.set(k, Value(k));

  std::vector<std::string> first, second;
  for (auto it = m.begin(); it != m.end(); ++it) {
    first.push_back((*it).first);
  }
  for (auto it = m.begin(); it != m.end(); ++it) {
    second.push_back((*it).first);
  }
  const std::vector<std::string> sorted = {"alpha", "bravo", "charlie",
                                           "delta", "echo"};
  EXPECT_EQ(first, sorted);
  EXPECT_EQ(second, sorted);
}

TEST(PersistentValueMap, IteratorPinsItsSnapshot) {
  PersistentValueMap m;
  for (int i = 0; i < 8; ++i) m.set("k" + std::to_string(i), Value(i));

  // Mutating mid-loop must not disturb an in-flight traversal: the
  // iterator walks the tree it was created from.
  std::size_t seen = 0;
  for (auto it = m.begin(); it != m.end(); ++it) {
    m.set("extra" + std::to_string(seen), Value(-1));
    m.erase("k3");
    ++seen;
  }
  EXPECT_EQ(seen, 8u);
}

TEST(PersistentValueMap, CopyIsSharedUntilMutated) {
  PersistentValueMap a;
  for (int i = 0; i < 64; ++i) a.set("key" + std::to_string(i), Value(i));

  PersistentValueMap b = a;
  EXPECT_TRUE(a.same_root(b));
  EXPECT_EQ(a, b);

  b.set("key0", Value(-1));
  EXPECT_FALSE(a.same_root(b));
  EXPECT_EQ(*a.find("key0"), Value(0));
  EXPECT_EQ(*b.find("key0"), Value(-1));
  // Every untouched entry still aliases the same payload storage.
  EXPECT_TRUE(a.find("key63") == b.find("key63") ||
              a.find("key63")->shares_storage_with(*b.find("key63")) ||
              *a.find("key63") == *b.find("key63"));
}

TEST(PersistentValueMap, ClearAndBytes) {
  PersistentValueMap m;
  EXPECT_EQ(m.approx_bytes(), 0u);
  m.set("big", Value(std::string(500, 'x')));
  EXPECT_GE(m.approx_bytes(), 500u);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.approx_bytes(), 0u);
}

// Randomized differential test against std::map, with persistence checks:
// snapshots taken mid-sequence must remain bit-for-bit equal to the model
// state they captured, no matter what happens to the live map afterwards.
TEST(PersistentValueMap, PropertyMatchesReferenceModelWithSnapshots) {
  util::Rng rng(20260805);
  for (int trial = 0; trial < 10; ++trial) {
    PersistentValueMap live;
    Model model;
    // Snapshots of the persistent map paired with full copies of the model
    // at the same instant.
    std::vector<std::pair<PersistentValueMap, Model>> snapshots;

    const int ops = static_cast<int>(rng.uniform_int(50, 400));
    for (int op = 0; op < ops; ++op) {
      const std::string key =
          "var" + std::to_string(rng.uniform_int(0, 40));
      const int action = static_cast<int>(rng.uniform_int(0, 9));
      if (action < 6) {  // insert/overwrite, mixed payload kinds
        Value v;
        switch (rng.uniform_int(0, 2)) {
          case 0:
            v = Value(rng.uniform_int(-1000, 1000));
            break;
          case 1:
            v = Value(std::string(
                static_cast<std::size_t>(rng.uniform_int(0, 64)), 's'));
            break;
          default:
            v = Value(ValueList{Value(rng.uniform_int(0, 9)),
                                Value("elem")});
        }
        live.set(key, v);
        model[key] = v;
      } else if (action < 8) {  // erase
        const bool erased = live.erase(key);
        EXPECT_EQ(erased, model.erase(key) > 0)
            << "trial " << trial << " op " << op;
      } else {  // snapshot: O(1) copy, paired with its reference state
        snapshots.emplace_back(live, model);
      }
    }

    expect_matches_model(live, model,
                         "trial " + std::to_string(trial) + " final");
    // Persistence: old snapshots are untouched by everything that ran
    // after they were taken.
    for (std::size_t s = 0; s < snapshots.size(); ++s) {
      expect_matches_model(snapshots[s].first, snapshots[s].second,
                           "trial " + std::to_string(trial) + " snapshot " +
                               std::to_string(s));
    }
  }
}

// erase() must keep the tree balanced enough that bytes/count aggregates
// stay exact; checked by draining a map in random order against the model.
TEST(PersistentValueMap, PropertyDrainInRandomOrder) {
  util::Rng rng(7);
  PersistentValueMap m;
  Model model;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i);
    Value v(std::string(static_cast<std::size_t>(i % 17), 'p'));
    m.set(key, v);
    model[key] = v;
  }
  while (!model.empty()) {
    auto it = model.begin();
    std::advance(it, rng.uniform_int(0, static_cast<int>(model.size()) - 1));
    ASSERT_TRUE(m.erase(it->first));
    model.erase(it);
    if (model.size() % 37 == 0) {
      expect_matches_model(m, model, "drain at size " +
                                         std::to_string(model.size()));
    }
  }
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.approx_bytes(), 0u);
}

}  // namespace
}  // namespace ocsp::csp
