// Unit tests for the "compiler": def/use analysis, hint expansion, and the
// call streaming pass.
#include <gtest/gtest.h>

#include "transform/transform.h"

namespace ocsp::transform {
namespace {

using csp::assign;
using csp::call;
using csp::lit;
using csp::seq;
using csp::StmtKind;
using csp::Value;
using csp::var;

// ---- Analysis ------------------------------------------------------------

TEST(Analysis, ReadsAndWrites) {
  auto s = seq({
      assign("x", csp::add(var("a"), var("b"))),
      call("S", "Op", {var("x")}, "r"),
      csp::print(var("r")),
  });
  Analysis a = analyze(s);
  EXPECT_TRUE(a.reads.count("a"));
  EXPECT_TRUE(a.reads.count("b"));
  EXPECT_TRUE(a.reads.count("x"));
  EXPECT_TRUE(a.reads.count("r"));
  EXPECT_TRUE(a.writes.count("x"));
  EXPECT_TRUE(a.writes.count("r"));
  EXPECT_FALSE(a.opaque);
}

TEST(Analysis, ControlFlowCollectsBothBranches) {
  auto s = csp::if_(var("c"), assign("x", lit(Value(1))),
                    assign("y", var("z")));
  Analysis a = analyze(s);
  EXPECT_TRUE(a.reads.count("c"));
  EXPECT_TRUE(a.reads.count("z"));
  EXPECT_TRUE(a.writes.count("x"));
  EXPECT_TRUE(a.writes.count("y"));
}

TEST(Analysis, ReceiveWritesMetadataVars) {
  Analysis a = analyze(csp::receive());
  EXPECT_TRUE(a.writes.count("__op"));
  EXPECT_TRUE(a.writes.count("__args"));
  EXPECT_TRUE(a.writes.count("__caller"));
}

TEST(Analysis, NativeIsOpaque) {
  Analysis a =
      analyze(csp::native("n", [](csp::Env&, util::Rng&) {}));
  EXPECT_TRUE(a.opaque);
}

TEST(Analysis, PassedSetIsWritesIntersectReads) {
  auto s1 = seq({assign("a", lit(Value(1))), assign("b", lit(Value(2)))});
  auto s2 = seq({assign("c", var("a"))});  // reads a only
  auto passed = passed_set(s1, s2);
  EXPECT_EQ(passed, (std::set<std::string>{"a"}));
}

TEST(Analysis, AntiDependencyDetection) {
  auto s1 = seq({assign("x", var("shared"))});    // reads shared
  auto s2 = seq({assign("shared", lit(Value(1)))});  // writes shared
  EXPECT_TRUE(has_anti_dependency(s1, s2));
  auto s2b = seq({assign("other", lit(Value(1)))});
  EXPECT_FALSE(has_anti_dependency(s1, s2b));
}

// ---- Fork insertion ------------------------------------------------------------

const csp::ForkStmt* find_fork(const csp::StmtPtr& stmt) {
  if (stmt == nullptr) return nullptr;
  if (stmt->kind == StmtKind::kFork) {
    return static_cast<const csp::ForkStmt*>(stmt.get());
  }
  if (stmt->kind == StmtKind::kSeq) {
    for (const auto& c : static_cast<const csp::SeqStmt&>(*stmt).body) {
      if (const auto* f = find_fork(c)) return f;
    }
  }
  if (stmt->kind == StmtKind::kWhile) {
    return find_fork(static_cast<const csp::WhileStmt&>(*stmt).body);
  }
  if (stmt->kind == StmtKind::kIf) {
    const auto& s = static_cast<const csp::IfStmt&>(*stmt);
    if (const auto* f = find_fork(s.then_branch)) return f;
    return find_fork(s.else_branch);
  }
  return nullptr;
}

TEST(ForkInsertion, ExpandsHintIntoFork) {
  std::map<std::string, csp::PredictorSpec> preds;
  preds.emplace("ok", csp::PredictorSpec::always(Value(true)));
  auto prog = seq({
      assign("pre", lit(Value(0))),
      call("S", "Op", {}, "ok"),
      csp::hint(preds, "mysite"),
      csp::print(var("ok")),
      assign("post", lit(Value(1))),
  });
  auto result = insert_forks(prog);
  EXPECT_EQ(result.forks_inserted, 1u);
  const auto* f = find_fork(result.program);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->site, "mysite");
  EXPECT_EQ(f->passed, (std::vector<std::string>{"ok"}));
  EXPECT_EQ(f->left->kind, StmtKind::kCall);
  // S2 contains both the print and the trailing assign.
  ASSERT_EQ(f->right->kind, StmtKind::kSeq);
  EXPECT_EQ(static_cast<const csp::SeqStmt&>(*f->right).body.size(), 2u);
}

TEST(ForkInsertion, SpanWidensS1) {
  std::map<std::string, csp::PredictorSpec> preds;
  preds.emplace("b", csp::PredictorSpec::always(Value(1)));
  auto prog = seq({
      assign("a", lit(Value(1))),
      assign("b", var("a")),
      csp::hint(preds, "s", /*span=*/2),
      csp::print(var("b")),
  });
  auto result = insert_forks(prog);
  const auto* f = find_fork(result.program);
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->left->kind, StmtKind::kSeq);
  EXPECT_EQ(static_cast<const csp::SeqStmt&>(*f->left).body.size(), 2u);
}

TEST(ForkInsertion, AutomaticPassedSetInference) {
  auto prog = seq({
      call("S", "Op", {}, "r"),
      csp::hint({}, "auto"),
      csp::print(var("r")),
  });
  auto result = insert_forks(prog);
  const auto* f = find_fork(result.program);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->passed, (std::vector<std::string>{"r"}));
  EXPECT_EQ(f->predictors.at("r").kind,
            csp::PredictorSpec::Kind::kLastCommitted);
}

TEST(ForkInsertion, HintInsideLoopBody) {
  std::map<std::string, csp::PredictorSpec> preds;
  preds.emplace("r", csp::PredictorSpec::always(Value(0)));
  auto prog = seq({
      csp::while_(lit(Value(false)),
                  seq({
                      call("S", "Op", {}, "r"),
                      csp::hint(preds, "loop"),
                      csp::print(var("r")),
                  })),
  });
  auto result = insert_forks(prog);
  EXPECT_EQ(result.forks_inserted, 1u);
  EXPECT_NE(find_fork(result.program), nullptr);
}

TEST(ForkInsertion, MultipleHintsRightBranch) {
  std::map<std::string, csp::PredictorSpec> p1, p2;
  p1.emplace("a", csp::PredictorSpec::always(Value(1)));
  p2.emplace("b", csp::PredictorSpec::always(Value(2)));
  auto prog = seq({
      call("S", "Op", {}, "a"),
      csp::hint(p1, "h1"),
      call("S", "Op", {}, "b"),
      csp::hint(p2, "h2"),
      csp::print(var("b")),
  });
  auto result = insert_forks(prog);
  EXPECT_EQ(result.forks_inserted, 2u);
  const auto* outer = find_fork(result.program);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->site, "h1");
  // The second fork lives inside the first fork's right branch.
  const auto* inner = find_fork(outer->right);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->site, "h2");
}

TEST(ForkInsertion, NoHintNoChange) {
  auto prog = seq({assign("x", lit(Value(1)))});
  auto result = insert_forks(prog);
  EXPECT_EQ(result.forks_inserted, 0u);
  EXPECT_EQ(find_fork(result.program), nullptr);
}

TEST(ForkInsertion, AntiDependencySetsNeedsCopy) {
  std::map<std::string, csp::PredictorSpec> preds;
  preds.emplace("r", csp::PredictorSpec::always(Value(0)));
  // S1 reads "shared"; S2 overwrites it -> copy required.
  auto prog = seq({
      call("S", "Op", {var("shared")}, "r"),
      csp::hint(preds, "anti"),
      assign("shared", lit(Value(0))),
  });
  const auto* f = find_fork(insert_forks(prog).program);
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->needs_copy);

  auto prog2 = seq({
      call("S", "Op", {var("shared")}, "r"),
      csp::hint(preds, "noanti"),
      csp::print(var("r")),
  });
  const auto* f2 = find_fork(insert_forks(prog2).program);
  ASSERT_NE(f2, nullptr);
  EXPECT_FALSE(f2->needs_copy);
}

// ---- Call streaming ------------------------------------------------------------

TEST(Streaming, ConvertsCallSequenceToForkChain) {
  auto prog = seq({
      call("S", "A", {}, "r1"),
      call("S", "B", {}, "r2"),
      csp::print(var("r2")),
  });
  auto result = stream_calls(prog);
  EXPECT_EQ(result.calls_streamed, 2u);
  const auto* outer = find_fork(result.program);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->left->kind, StmtKind::kCall);
  EXPECT_FALSE(outer->needs_copy);  // streaming never has anti-deps
  const auto* inner = find_fork(outer->right);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->left->kind, StmtKind::kCall);
}

TEST(Streaming, LastCallWithoutContinuationNotStreamed) {
  auto prog = seq({call("S", "A", {}, "r")});
  auto result = stream_calls(prog);
  EXPECT_EQ(result.calls_streamed, 0u);
}

TEST(Streaming, FilterSelectsCalls) {
  auto prog = seq({
      call("S", "A", {}, "r1"),
      call("T", "B", {}, "r2"),
      csp::print(var("r2")),
  });
  StreamingOptions opts;
  opts.filter = [](const csp::CallStmt& c) { return c.target == "T"; };
  auto result = stream_calls(prog, opts);
  EXPECT_EQ(result.calls_streamed, 1u);
  const auto* f = find_fork(result.program);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(static_cast<const csp::CallStmt&>(*f->left).target, "T");
}

TEST(Streaming, SiteNamesAreStable) {
  auto prog = seq({
      call("S", "A", {}, "r1"),
      call("S", "A", {}, "r2"),
      csp::print(var("r2")),
  });
  auto result = stream_calls(prog);
  const auto* f = find_fork(result.program);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->site.rfind("stream:S.A", 0), 0u) << f->site;
}

TEST(Streaming, StreamsInsideLoops) {
  auto prog = seq({
      csp::while_(lit(Value(true)),
                  seq({
                      call("S", "A", {}, "r"),
                      assign("i", var("r")),
                  })),
  });
  auto result = stream_calls(prog);
  EXPECT_EQ(result.calls_streamed, 1u);
}

TEST(Streaming, PredictorOptionOverridesDefault) {
  auto prog = seq({
      call("S", "A", {}, "r"),
      csp::print(var("r")),
  });
  StreamingOptions opts;
  opts.predictor = [](const csp::CallStmt&) {
    return csp::PredictorSpec::always(Value(123));
  };
  const auto* f = find_fork(stream_calls(prog, opts).program);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->predictors.at("r").constant, Value(123));
}

}  // namespace
}  // namespace ocsp::transform
