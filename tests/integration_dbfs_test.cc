// Integration tests for the paper's running example (section 2, Figure 1):
// S1 = Update on a database server, S2 = Write to a filesystem server
// guarded by the OK flag, parallelized through an explicit hint.
#include <gtest/gtest.h>

#include "core/workloads.h"

namespace ocsp {
namespace {

core::DbFsParams base_params() {
  core::DbFsParams p;
  p.transactions = 4;
  p.net.latency = sim::microseconds(400);
  p.db_service_time = sim::microseconds(20);
  p.fs_service_time = sim::microseconds(20);
  return p;
}

TEST(DbFsIntegration, SuccessPathCommitsEveryGuess) {
  auto result =
      baseline::run_scenario(core::db_fs_scenario(base_params()), true);
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  EXPECT_EQ(result.stats.forks, 4u);
  EXPECT_EQ(result.stats.commits, 4u);
  EXPECT_EQ(result.stats.total_aborts(), 0u);
}

TEST(DbFsIntegration, TraceMatchesPessimistic) {
  auto scenario = core::db_fs_scenario(base_params());
  auto pessimistic = baseline::run_scenario(scenario, false);
  auto optimistic = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(pessimistic.all_completed);
  ASSERT_TRUE(optimistic.all_completed);
  std::string why;
  EXPECT_TRUE(
      trace::compare_traces(pessimistic.trace, optimistic.trace, &why))
      << why;
}

TEST(DbFsIntegration, OverlapsUpdateAndWrite) {
  auto scenario = core::db_fs_scenario(base_params());
  auto pessimistic = baseline::run_scenario(scenario, false);
  auto optimistic = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(optimistic.all_completed);
  // The speculative Write overlaps the Update round trip: the optimistic
  // run should save most of one round trip per transaction.
  EXPECT_LT(optimistic.last_completion, pessimistic.last_completion);
  EXPECT_LT(optimistic.last_completion * 3,
            pessimistic.last_completion * 2);
}

TEST(DbFsIntegration, UpdateFailureAbortsSpeculativeWrite) {
  auto params = base_params();
  params.update_fail_probability = 0.5;
  auto scenario = core::db_fs_scenario(params);
  auto pessimistic = baseline::run_scenario(scenario, false);
  auto optimistic = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(pessimistic.all_completed);
  ASSERT_TRUE(optimistic.all_completed);
  EXPECT_GT(optimistic.stats.aborts_value_fault, 0u)
      << optimistic.stats.to_string();
  std::string why;
  EXPECT_TRUE(
      trace::compare_traces(pessimistic.trace, optimistic.trace, &why))
      << why << "\npessimistic:\n"
      << pessimistic.trace.to_string() << "optimistic:\n"
      << optimistic.trace.to_string();
}

TEST(DbFsIntegration, FilesystemNeverSeesAbortedWrites) {
  // With every update failing, no Write must ever commit.
  auto params = base_params();
  params.update_fail_probability = 1.0;
  auto result = baseline::run_scenario(core::db_fs_scenario(params), true);
  ASSERT_TRUE(result.all_completed);
  for (ProcessId id : {ProcessId{0}, ProcessId{1}, ProcessId{2}}) {
    for (const auto& e : result.trace.for_process(id)) {
      if (e.kind == trace::ObservableEvent::Kind::kReceive) {
        EXPECT_NE(e.op, "Write") << trace::to_string(e);
      }
    }
  }
  EXPECT_EQ(result.stats.aborts_value_fault, 4u);
}

}  // namespace
}  // namespace ocsp
