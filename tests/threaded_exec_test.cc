// Tests for the real-thread executor: the CSP substrate running with true
// OS-level concurrency, cross-checked against the deterministic simulator.
#include <gtest/gtest.h>

#include "core/workloads.h"
#include "exec/threaded.h"

namespace ocsp {
namespace {

using csp::lit;
using csp::Value;
using csp::var;

TEST(ThreadedExec, SingleClientEchoCompletes) {
  exec::ThreadedRuntime rt;
  csp::StmtPtr client = csp::seq({
      csp::call("S", "Echo", {lit(Value(5))}, "a"),
      csp::call("S", "Echo", {var("a")}, "b"),
      csp::print(var("b")),
  });
  std::map<std::string, csp::NativeHandler> handlers;
  handlers["Echo"] = [](const csp::ValueList& args, csp::Env&, util::Rng&) {
    return args[0];
  };
  const ProcessId x = rt.add_process("X", client);
  rt.add_process("S", csp::native_service(std::move(handlers)), {},
                 /*serves_forever=*/true);
  ASSERT_TRUE(rt.run());
  EXPECT_TRUE(rt.completed(x));
  const auto trace = rt.committed_trace();
  const auto& events = trace.for_process(x);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().kind,
            trace::ObservableEvent::Kind::kExternalOutput);
  EXPECT_EQ(events.back().data, Value(5));
}

TEST(ThreadedExec, MatchesSimulatedPessimisticTrace) {
  // Single-client workload: the threaded run's committed trace must equal
  // the simulator's pessimistic trace event for event, including the
  // server-side randomness (identical RNG seeding).
  core::PutLineParams p;
  p.lines = 8;
  p.fail_probability = 0.4;
  auto scenario = core::putline_scenario(p);
  auto simulated = baseline::run_scenario(scenario, false);
  ASSERT_TRUE(simulated.all_completed);

  exec::ThreadedOptions opts;
  opts.seed = scenario.options.seed;
  exec::ThreadedRuntime rt(opts);
  for (std::size_t i = 0; i < scenario.processes.size(); ++i) {
    const auto& proc = scenario.processes[i];
    rt.add_process(proc.name, proc.program, proc.env,
                   /*serves_forever=*/i != 0);
  }
  ASSERT_TRUE(rt.run());
  std::string why;
  EXPECT_TRUE(
      trace::compare_traces(simulated.trace, rt.committed_trace(), &why))
      << why;
}

TEST(ThreadedExec, SequentialForksAdoptLeftState) {
  // The streamed program (forks included) must run correctly on threads in
  // pessimistic mode, producing the same outputs as the plain program.
  core::DbFsParams p;
  p.transactions = 4;
  auto scenario = core::db_fs_scenario(p);
  auto simulated = baseline::run_scenario(scenario, false);

  exec::ThreadedOptions opts;
  opts.seed = scenario.options.seed;
  exec::ThreadedRuntime rt(opts);
  for (std::size_t i = 0; i < scenario.processes.size(); ++i) {
    const auto& proc = scenario.processes[i];
    rt.add_process(proc.name, proc.program, proc.env, i != 0);
  }
  ASSERT_TRUE(rt.run());
  std::string why;
  EXPECT_TRUE(
      trace::compare_traces(simulated.trace, rt.committed_trace(), &why))
      << why;
}

TEST(ThreadedExec, TwoClientsShareAServer) {
  // Multi-client: server interleaving is scheduler-dependent, but each
  // client's own sequence is fixed.
  exec::ThreadedRuntime rt;
  auto client = [](int base) {
    return csp::seq({
        csp::call("S", "Add", {lit(Value(base))}, "a"),
        csp::call("S", "Add", {lit(Value(base + 1))}, "b"),
        csp::print(csp::add(var("a"), var("b"))),
    });
  };
  std::map<std::string, csp::NativeHandler> handlers;
  handlers["Add"] = [](const csp::ValueList& args, csp::Env&, util::Rng&) {
    return Value(args[0].as_int() + 100);
  };
  const ProcessId c0 = rt.add_process("C0", client(0));
  const ProcessId c1 = rt.add_process("C1", client(10));
  rt.add_process("S", csp::native_service(std::move(handlers)), {}, true);
  ASSERT_TRUE(rt.run());
  EXPECT_TRUE(rt.completed(c0));
  EXPECT_TRUE(rt.completed(c1));
  const auto trace = rt.committed_trace();
  EXPECT_EQ(trace.for_process(c0).back().data, Value(201));
  EXPECT_EQ(trace.for_process(c1).back().data, Value(221));
}

TEST(ThreadedExec, PipelineThroughRelay) {
  exec::ThreadedRuntime rt;
  csp::StmtPtr client = csp::seq({
      csp::call("R", "Fwd", {lit(Value(7))}, "a"),
      csp::print(var("a")),
  });
  std::map<std::string, csp::StmtPtr> relay;
  relay["Fwd"] = csp::seq({
      csp::call("End", "Fwd", {csp::arg(0)}, "fwd"),
      csp::reply(var("fwd")),
  });
  std::map<std::string, csp::NativeHandler> end;
  end["Fwd"] = [](const csp::ValueList& args, csp::Env&, util::Rng&) {
    return Value(args[0].as_int() * 3);
  };
  const ProcessId x = rt.add_process("X", client);
  rt.add_process("R", csp::service_loop(std::move(relay)), {}, true);
  rt.add_process("End", csp::native_service(std::move(end)), {}, true);
  ASSERT_TRUE(rt.run());
  EXPECT_EQ(rt.committed_trace().for_process(x).back().data, Value(21));
}

}  // namespace
}  // namespace ocsp
