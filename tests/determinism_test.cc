// Determinism: a run is a pure function of its configuration and seed.
//
// This property is what makes the figure-level tests exact and the
// benchmarks reproducible, and it is easy to break accidentally (iteration
// over unordered containers, wall-clock leakage, RNG shared across
// processes).  These tests re-run workloads and require bit-identical
// timelines, traces, and counters — and different seeds to actually
// produce different event timings where randomness is involved.
#include <gtest/gtest.h>

#include "core/workloads.h"

namespace ocsp {
namespace {

std::string timeline_of(const baseline::Scenario& scenario, bool spec) {
  auto rt = baseline::make_runtime(scenario, spec);
  rt->run(sim::seconds(120));
  return rt->timeline().to_string();
}

TEST(Determinism, PutLineRunsAreBitIdentical) {
  core::PutLineParams p;
  p.lines = 12;
  p.fail_probability = 0.3;
  p.net.jitter = sim::microseconds(200);
  auto scenario = core::putline_scenario(p);
  EXPECT_EQ(timeline_of(scenario, true), timeline_of(scenario, true));
  EXPECT_EQ(timeline_of(scenario, false), timeline_of(scenario, false));
}

TEST(Determinism, MutualCycleRunsAreBitIdentical) {
  core::MutualParams p;
  p.crossing = true;
  auto scenario = core::mutual_scenario(p);
  EXPECT_EQ(timeline_of(scenario, true), timeline_of(scenario, true));
}

TEST(Determinism, SeedsChangeJitteredTimings) {
  core::PutLineParams p;
  p.lines = 8;
  p.net.jitter = sim::microseconds(500);
  p.seed = 1;
  auto a = timeline_of(core::putline_scenario(p), true);
  p.seed = 2;
  auto b = timeline_of(core::putline_scenario(p), true);
  EXPECT_NE(a, b);
}

TEST(Determinism, SeedsChangeFailureOutcomes) {
  // The first PutLine failure ends the run, so the *number of lines
  // written* (and hence the completion time) varies with the seed.
  core::PutLineParams p;
  p.lines = 10;
  p.fail_probability = 0.5;
  std::set<sim::Time> completions;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    p.seed = seed;
    auto result = baseline::run_scenario(core::putline_scenario(p), true);
    completions.insert(result.last_completion);
  }
  EXPECT_GT(completions.size(), 1u);
}

TEST(Determinism, StatsIdenticalAcrossReruns) {
  core::DbFsParams p;
  p.transactions = 6;
  p.update_fail_probability = 0.4;
  auto scenario = core::db_fs_scenario(p);
  auto a = baseline::run_scenario(scenario, true);
  auto b = baseline::run_scenario(scenario, true);
  EXPECT_EQ(a.stats.to_string(), b.stats.to_string());
  EXPECT_EQ(a.last_completion, b.last_completion);
  std::string why;
  EXPECT_TRUE(trace::compare_traces(a.trace, b.trace, &why)) << why;
}

TEST(Determinism, ReplayStrategyIdenticalToItself) {
  core::WriteThroughParams p;
  p.force_fault = true;
  p.transactions = 2;
  p.spec.rollback = spec::RollbackStrategy::kReplayFromLog;
  auto scenario = core::write_through_scenario(p);
  EXPECT_EQ(timeline_of(scenario, true), timeline_of(scenario, true));
}

}  // namespace
}  // namespace ocsp
