// Fault-tolerance stack: seeded fault plans injected into net::Network, the
// ack/retransmit transport, crash/recovery with incarnation filtering, and
// the adaptive speculation governor.
//
// The load-bearing test is the chaos sweep: 64 seeded fault plans spanning
// drop / duplicate / corrupt / partition / crash, each run checked against
// Theorem 1 — the committed trace under faults must equal the fault-free
// sequential run's trace exactly.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/workloads.h"
#include "fault/plan.h"
#include "net/latency.h"
#include "net/network.h"
#include "sim/scheduler.h"

namespace ocsp {
namespace {

using csp::Value;

class TestMessage final : public net::Message {
 public:
  explicit TestMessage(int n) : n_(n) {}
  std::string kind() const override { return "TEST"; }
  int n() const { return n_; }

 private:
  int n_;
};

// ---------------------------------------------------------------------------
// Satellite: fault injection draws from its own RNG stream, so enabling it
// never perturbs the latency draws of surviving messages.
// ---------------------------------------------------------------------------

TEST(FaultRng, LatencyDrawsUnperturbedByFaultHook) {
  auto run = [](bool faults) {
    sim::Scheduler sched;
    net::Network netw(sched, util::Rng(7));
    net::LinkConfig link;
    link.latency =
        net::uniform_latency(sim::microseconds(100), sim::microseconds(900));
    link.fifo = false;  // every send takes an independent latency draw
    netw.set_default_link(link);
    std::map<MsgId, sim::Time> first_delivery;
    netw.register_endpoint(1, [&](const net::Envelope& env) {
      first_delivery.emplace(env.id, sched.now());
    });
    if (faults) {
      int n = 0;
      netw.set_fault_hook([&n](const net::Envelope&, util::Rng& rng) {
        net::FaultDecision d;
        ++n;
        if (n % 3 == 0) d.drop = true;
        if (n % 2 == 0) d.duplicates = 1;
        d.cause = "test";
        // Burn extra fault-stream entropy: must not leak into latency.
        (void)rng.uniform01();
        return d;
      });
    }
    for (int i = 0; i < 24; ++i) {
      netw.send(0, 1, std::make_shared<TestMessage>(i));
    }
    sched.run();
    return first_delivery;
  };

  const auto clean = run(false);
  const auto faulty = run(true);
  ASSERT_EQ(clean.size(), 24u);
  EXPECT_LT(faulty.size(), clean.size());  // drops really happened
  for (const auto& [id, when] : faulty) {
    auto it = clean.find(id);
    ASSERT_NE(it, clean.end());
    EXPECT_EQ(it->second, when)
        << "fault injection perturbed the latency draw of message " << id;
  }
}

// ---------------------------------------------------------------------------
// Chaos sweep scaffolding: a PutLine run sized so the generated fault
// windows land inside it, with the full recovery stack switched on.
// ---------------------------------------------------------------------------

core::PutLineParams chaos_params() {
  core::PutLineParams p;
  p.lines = 10;
  p.service_time = sim::microseconds(200);
  p.client_compute = sim::microseconds(100);
  p.net.latency = sim::microseconds(500);
  // Control liveness on lossy/partitioned links: blind re-broadcast whose
  // 30 x 1ms window outlasts every outage the chaos spec can generate.
  p.spec.control_retry = true;
  p.spec.control_retry_interval = sim::milliseconds(1);
  p.spec.control_retry_limit = 30;
  p.spec.join_wait_timeout = sim::milliseconds(200);
  return p;
}

fault::ChaosSpec chaos_spec() {
  fault::ChaosSpec s;
  // The workload spans ~15-20 virtual ms; squeeze the fault windows into it.
  s.horizon = sim::milliseconds(20);
  s.partition_min_len = sim::milliseconds(1);
  s.partition_max_len = sim::milliseconds(5);
  s.crash_min_downtime = sim::milliseconds(1);
  s.crash_max_downtime = sim::milliseconds(4);
  return s;
}

baseline::Scenario chaos_scenario(const fault::FaultPlan& plan) {
  auto scenario = core::putline_scenario(chaos_params());
  scenario.options.fault_plan = plan;
  scenario.options.reliable.enabled = true;
  return scenario;
}

// ---------------------------------------------------------------------------
// The oracle: 64 seeded plans, every committed trace equal to the
// fault-free sequential run.
// ---------------------------------------------------------------------------

TEST(ChaosSweep, TheoremOneHoldsForSixtyFourSeededPlans) {
  const auto reference =
      baseline::run_scenario(core::putline_scenario(chaos_params()), false);
  ASSERT_TRUE(reference.all_completed);

  int with_drop = 0, with_dup = 0, with_corrupt = 0, with_partition = 0,
      with_crash = 0;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const fault::FaultPlan plan =
        fault::make_chaos_plan(seed, chaos_spec(), /*num_processes=*/2);
    ASSERT_TRUE(plan.enabled);
    if (plan.data.drop > 0 || plan.control.drop > 0) ++with_drop;
    if (plan.data.duplicate > 0 || plan.control.duplicate > 0) ++with_dup;
    if (plan.data.corrupt > 0 || plan.control.corrupt > 0) ++with_corrupt;
    if (!plan.partitions.empty()) ++with_partition;
    if (!plan.crashes.empty()) ++with_crash;

    auto result = baseline::run_scenario(chaos_scenario(plan), true,
                                         sim::seconds(10));
    ASSERT_TRUE(result.all_completed)
        << "seed " << seed << " plan " << plan.describe() << "\n"
        << result.stats.to_string();
    std::string why;
    EXPECT_TRUE(trace::compare_traces(reference.trace, result.trace, &why))
        << "seed " << seed << " plan " << plan.describe() << ": " << why;
  }
  // The sweep must actually have exercised every fault class.
  EXPECT_GE(with_drop, 8);
  EXPECT_GE(with_dup, 8);
  EXPECT_GE(with_corrupt, 8);
  EXPECT_GE(with_partition, 8);
  EXPECT_GE(with_crash, 8);
}

// ---------------------------------------------------------------------------
// Satellite: determinism regression — same seed + same plan => identical
// committed trace and identical virtual finishing time.
// ---------------------------------------------------------------------------

TEST(ChaosSweep, SameSeedSamePlanReproducesExactly) {
  const fault::FaultPlan plan =
      fault::make_chaos_plan(5, chaos_spec(), 2);  // 5 % 6 -> mixed plan
  auto a = baseline::run_scenario(chaos_scenario(plan), true, sim::seconds(10));
  auto b = baseline::run_scenario(chaos_scenario(plan), true, sim::seconds(10));
  ASSERT_TRUE(a.all_completed);
  ASSERT_TRUE(b.all_completed);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.stats.total_aborts(), b.stats.total_aborts());
  EXPECT_EQ(a.network.faults_dropped, b.network.faults_dropped);
  std::string why;
  EXPECT_TRUE(trace::compare_traces(a.trace, b.trace, &why)) << why;
}

TEST(ChaosSweep, ZeroProbabilityPlanIsBitIdenticalToNoPlan) {
  auto vanilla =
      baseline::run_scenario(core::putline_scenario(chaos_params()), true);
  fault::FaultPlan noop;
  noop.enabled = true;  // hook installed, but nothing ever fires
  auto scenario = core::putline_scenario(chaos_params());
  scenario.options.fault_plan = noop;
  auto hooked = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(vanilla.all_completed);
  ASSERT_TRUE(hooked.all_completed);
  EXPECT_EQ(vanilla.finished_at, hooked.finished_at);
  std::string why;
  EXPECT_TRUE(trace::compare_traces(vanilla.trace, hooked.trace, &why)) << why;
}

// ---------------------------------------------------------------------------
// Targeted recovery-layer tests.
// ---------------------------------------------------------------------------

TEST(Recovery, DuplicateStormIsSuppressed) {
  fault::FaultPlan plan;
  plan.enabled = true;
  plan.data.duplicate = 0.9;
  plan.control.duplicate = 0.9;
  auto result =
      baseline::run_scenario(chaos_scenario(plan), true, sim::seconds(10));
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  EXPECT_GT(result.network.faults_duplicated, 0u);
  EXPECT_GT(result.metrics.counter_or("duplicates_suppressed"), 0u);
  auto reference =
      baseline::run_scenario(core::putline_scenario(chaos_params()), false);
  std::string why;
  EXPECT_TRUE(trace::compare_traces(reference.trace, result.trace, &why))
      << why;
}

TEST(Recovery, CorruptionIsRecoveredByRetransmission) {
  fault::FaultPlan plan;
  plan.enabled = true;
  plan.data.corrupt = 0.5;
  auto result =
      baseline::run_scenario(chaos_scenario(plan), true, sim::seconds(10));
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  EXPECT_GT(result.network.faults_corrupted, 0u);
  EXPECT_GT(result.metrics.counter_or("retransmissions"), 0u);
  auto reference =
      baseline::run_scenario(core::putline_scenario(chaos_params()), false);
  std::string why;
  EXPECT_TRUE(trace::compare_traces(reference.trace, result.trace, &why))
      << why;
}

TEST(Recovery, PartitionHealsAndRunCompletes) {
  fault::FaultPlan plan;
  plan.enabled = true;
  plan.partitions.push_back(
      {0, 1, sim::milliseconds(2), sim::milliseconds(6)});
  auto result =
      baseline::run_scenario(chaos_scenario(plan), true, sim::seconds(10));
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  EXPECT_GT(result.metrics.counter_or("fault_partition_drops"), 0u);
  auto reference =
      baseline::run_scenario(core::putline_scenario(chaos_params()), false);
  std::string why;
  EXPECT_TRUE(trace::compare_traces(reference.trace, result.trace, &why))
      << why;
}

TEST(Recovery, CrashRestartResumesFromCommittedState) {
  fault::FaultPlan plan;
  plan.enabled = true;
  plan.crashes.push_back({/*process=*/0, sim::microseconds(1500),
                          sim::milliseconds(4)});
  auto result =
      baseline::run_scenario(chaos_scenario(plan), true, sim::seconds(10));
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  EXPECT_EQ(result.stats.crashes, 1u);
  EXPECT_EQ(result.stats.crash_recoveries, 1u);
  auto reference =
      baseline::run_scenario(core::putline_scenario(chaos_params()), false);
  std::string why;
  EXPECT_TRUE(trace::compare_traces(reference.trace, result.trace, &why))
      << why;
}

TEST(Recovery, ServerCrashParksFramesUntilRestart) {
  fault::FaultPlan plan;
  plan.enabled = true;
  plan.crashes.push_back({/*process=*/1, sim::milliseconds(1),
                          sim::milliseconds(4)});
  auto result =
      baseline::run_scenario(chaos_scenario(plan), true, sim::seconds(10));
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  EXPECT_EQ(result.stats.crashes, 1u);
  EXPECT_GT(result.metrics.counter_or("parked_deliveries"), 0u);
  auto reference =
      baseline::run_scenario(core::putline_scenario(chaos_params()), false);
  std::string why;
  EXPECT_TRUE(trace::compare_traces(reference.trace, result.trace, &why))
      << why;
}

// ---------------------------------------------------------------------------
// Adaptive speculation governor.
// ---------------------------------------------------------------------------

core::AbortStormParams storm_params(bool governed) {
  core::AbortStormParams p;
  p.calls = 60;
  p.hit_period = 3;
  p.spec.governor_enabled = governed;
  return p;
}

TEST(Governor, DemotesStormingSiteAndCutsAborts) {
  auto off = baseline::run_scenario(
      core::abort_storm_scenario(storm_params(false)), true);
  auto on = baseline::run_scenario(
      core::abort_storm_scenario(storm_params(true)), true);
  ASSERT_TRUE(off.all_completed) << off.stats.to_string();
  ASSERT_TRUE(on.all_completed) << on.stats.to_string();

  // Without the governor the storm rages for the whole run: the periodic
  // hits keep resetting retry limit L, so roughly 2/3 of the 60 calls
  // abort.  With it, the EWMA breaker demotes the site.
  EXPECT_GE(off.stats.total_aborts(), 20u) << off.stats.to_string();
  EXPECT_EQ(off.stats.governor_demotions, 0u);
  EXPECT_GE(on.stats.governor_demotions, 1u) << on.stats.to_string();
  EXPECT_GT(on.stats.governor_sequential_forks, 0u);
  EXPECT_LT(on.stats.total_aborts(), off.stats.total_aborts());

  // Correctness is untouched either way.
  auto reference = baseline::run_scenario(
      core::abort_storm_scenario(storm_params(false)), false);
  std::string why;
  EXPECT_TRUE(trace::compare_traces(reference.trace, off.trace, &why)) << why;
  EXPECT_TRUE(trace::compare_traces(reference.trace, on.trace, &why)) << why;
}

TEST(Governor, HysteresisReenablesAfterCalm) {
  // Long run: the governed site's sequential passes decay the EWMA below
  // the promote threshold, so speculation resumes at least once.
  auto p = storm_params(true);
  p.calls = 120;
  auto result = baseline::run_scenario(core::abort_storm_scenario(p), true);
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  EXPECT_GE(result.stats.governor_demotions, 1u);
  EXPECT_GE(result.stats.governor_promotions, 1u)
      << result.stats.to_string();
}

}  // namespace
}  // namespace ocsp
