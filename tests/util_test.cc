// Unit tests for the util layer: deterministic RNG, statistics
// accumulators, the sparse vector backing commit histories, the flat set
// backing guard sets, and the bench table printer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/flat_set.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/sparse_vector.h"
#include "util/stats.h"
#include "util/table.h"

namespace ocsp::util {
namespace {

// ---- Rng ------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 12);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 12);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(21);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  EXPECT_NE(a.next(), child.next());
  // Splitting is deterministic too.
  Rng b(42);
  Rng child2 = b.split();
  EXPECT_EQ(child2.next(), Rng(42).split().next());
}

TEST(Rng, CopyPreservesState) {
  Rng a(99);
  a.next();
  Rng b = a;
  EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(a, b);
}

// ---- Accumulator ------------------------------------------------------------

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesCombinedStream) {
  Accumulator all, left, right;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0, 100);
    all.add(v);
    (i % 2 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

// ---- Samples ------------------------------------------------------------------

TEST(Samples, ExactPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(Samples, EmptyPercentileIsZero) {
  Samples s;
  EXPECT_EQ(s.percentile(50), 0.0);
}

TEST(Samples, MeanIsArithmetic) {
  Samples s;
  s.add(1);
  s.add(2);
  s.add(6);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

// ---- Histogram ------------------------------------------------------------------

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bucket 0
  h.add(9.5);   // bucket 9
  h.add(-5.0);  // clamps to 0
  h.add(50.0);  // clamps to 9
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0);
}

// ---- SparseVector ------------------------------------------------------------------

TEST(SparseVector, DefaultsForMissing) {
  SparseVector<int> v(7);
  EXPECT_EQ(v.get(0), 7);
  EXPECT_EQ(v.get(1000000), 7);
  EXPECT_EQ(v.explicit_count(), 0u);
}

TEST(SparseVector, ExplicitEntriesStored) {
  SparseVector<int> v(0);
  v.set(5, 42);
  EXPECT_EQ(v.get(5), 42);
  EXPECT_TRUE(v.has_explicit(5));
  EXPECT_FALSE(v.has_explicit(4));
  EXPECT_EQ(v.explicit_count(), 1u);
}

TEST(SparseVector, WritingDefaultErasesEntry) {
  // Section 4.1.5: committed entries (the default) must not consume space.
  SparseVector<int> v(1);
  v.set(3, 9);
  EXPECT_EQ(v.explicit_count(), 1u);
  v.set(3, 1);  // back to the default
  EXPECT_EQ(v.explicit_count(), 0u);
  EXPECT_EQ(v.get(3), 1);
}

TEST(SparseVector, IterationInIndexOrder) {
  SparseVector<int> v(0);
  v.set(9, 1);
  v.set(2, 2);
  v.set(5, 3);
  std::vector<std::size_t> order;
  for (const auto& [i, val] : v) order.push_back(i);
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 5, 9}));
}

// ---- FlatSet ------------------------------------------------------------------

TEST(FlatSet, InsertEraseContains) {
  FlatSet<int> s;
  EXPECT_TRUE(s.insert(3));
  EXPECT_TRUE(s.insert(1));
  EXPECT_FALSE(s.insert(3));  // duplicate
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.erase(1));
  EXPECT_FALSE(s.erase(1));
  EXPECT_FALSE(s.contains(1));
  EXPECT_EQ(s.size(), 1u);
}

TEST(FlatSet, StaysSorted) {
  FlatSet<int> s{5, 1, 4, 2, 3};
  std::vector<int> out(s.begin(), s.end());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(FlatSet, FindReturnsEndForMissing) {
  FlatSet<int> s{1, 2};
  EXPECT_EQ(s.find(3), s.end());
  EXPECT_NE(s.find(2), s.end());
}

TEST(FlatSet, EqualityIsElementwise) {
  FlatSet<int> a{1, 2}, b{2, 1}, c{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

// ---- Table ------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row("x", 1);
  t.row("longer", 2.5);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("2.500"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, FormatsIntegersWithoutDecimals) {
  Table t({"v"});
  t.row(42);
  EXPECT_NE(t.to_string().find("42"), std::string::npos);
  EXPECT_EQ(t.to_string().find("42.000"), std::string::npos);
}

TEST(Table, BoolsRenderAsYesNo) {
  Table t({"a", "b"});
  t.row(true, false);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("yes"), std::string::npos);
  EXPECT_NE(out.find("no"), std::string::npos);
}

// ---- Histogram merge / to_string ------------------------------------------

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.add(1.5);
  a.add(2.5);
  b.add(2.5);
  b.add(9.5);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.bucket(1), 1u);  // [1, 2): the 1.5 sample
  EXPECT_EQ(a.bucket(2), 2u);  // [2, 3): both 2.5 samples
  EXPECT_EQ(a.bucket(9), 1u);  // [9, 10): the 9.5 sample
}

TEST(Histogram, SameShapeDetectsMismatch) {
  Histogram a(0.0, 10.0, 10);
  EXPECT_TRUE(a.same_shape(Histogram(0.0, 10.0, 10)));
  EXPECT_FALSE(a.same_shape(Histogram(0.0, 10.0, 5)));
  EXPECT_FALSE(a.same_shape(Histogram(0.0, 20.0, 10)));
}

TEST(Histogram, ToStringListsNonEmptyBuckets) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(2.5);
  h.add(2.6);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("[0"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
  EXPECT_EQ(Histogram(0.0, 4.0, 4).to_string(), "(empty)\n");
}

// ---- JSON writer ----------------------------------------------------------

TEST(Json, WriterProducesExpectedDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("n").value(3);
  w.key("pi").value(0.5);
  w.key("s").value("a\"b\\c\n");
  w.key("flag").value(true);
  w.key("none").null();
  w.key("xs").begin_array().value(1).value(2).end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"n\":3,\"pi\":0.5,\"s\":\"a\\\"b\\\\c\\n\",\"flag\":true,"
            "\"none\":null,\"xs\":[1,2]}");
}

TEST(Json, EscapeHandlesControlCharacters) {
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, WriterRoundTripsThroughParser) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("ocsp");
  w.key("values").begin_array().value(1.5).value(-2).end_array();
  w.key("nested").begin_object().key("ok").value(true).end_object();
  w.end_object();

  auto parsed = json_parse(w.str());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->find("name")->string, "ocsp");
  ASSERT_TRUE(parsed->find("values")->is_array());
  EXPECT_DOUBLE_EQ(parsed->find("values")->array[0].number, 1.5);
  EXPECT_DOUBLE_EQ(parsed->find("values")->array[1].number, -2.0);
  EXPECT_TRUE(parsed->find("nested")->find("ok")->boolean);
}

TEST(Json, ParserRejectsGarbage) {
  EXPECT_FALSE(json_parse("{").has_value());
  EXPECT_FALSE(json_parse("[1,]").has_value());
  EXPECT_FALSE(json_parse("{} trailing").has_value());
  EXPECT_FALSE(json_parse("\"unterminated").has_value());
}

TEST(Json, ParserHandlesEscapesAndNesting) {
  auto v = json_parse(R"({"a": [true, null, "xA\n"], "b": -1.25e2})");
  ASSERT_TRUE(v.has_value());
  const JsonValue* a = v->find("a");
  ASSERT_TRUE(a != nullptr && a->is_array());
  EXPECT_TRUE(a->array[0].boolean);
  EXPECT_EQ(a->array[1].type, JsonValue::Type::kNull);
  EXPECT_EQ(a->array[2].string, "xA\n");
  EXPECT_DOUBLE_EQ(v->find("b")->number, -125.0);
}

}  // namespace
}  // namespace ocsp::util
